#include "serve/listen.hpp"

#include <iostream>

#include "util/logging.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define LRSIZER_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#endif

namespace lrsizer::serve {

#if defined(LRSIZER_HAVE_SOCKETS)

namespace {

/// Read lines from / write response lines to one connected socket. Reads
/// are poll-gated so a stop request (Ctrl-C) is noticed within ~500 ms even
/// while the client is idle; writes happen from worker threads through the
/// Server's serialized sink.
class Connection {
 public:
  explicit Connection(int fd, bool close_on_destroy = true)
      : fd_(fd), close_on_destroy_(close_on_destroy) {}
  ~Connection() {
    if (close_on_destroy_) ::close(fd_);
  }

  /// False on EOF, error, or stop request; strips the trailing newline
  /// like std::getline.
  bool read_line(std::string& line, const std::stop_token& stop) {
    while (true) {
      const std::size_t newline = buffer_.find('\n', pos_);
      if (newline != std::string::npos) {
        line.assign(buffer_, pos_, newline - pos_);
        pos_ = newline + 1;
        return true;
      }
      buffer_.erase(0, pos_);
      pos_ = 0;
      if (!fill(stop)) {
        // EOF with a final unterminated line still hands it over.
        if (buffer_.empty()) return false;
        line = std::move(buffer_);
        buffer_.clear();
        return true;
      }
    }
  }

  void write_line(const std::string& line) {
    std::string out = line;
    out.push_back('\n');
    std::size_t off = 0;
    while (off < out.size()) {
      // MSG_NOSIGNAL: a disconnected client must surface as a write error,
      // not a process-killing SIGPIPE — this is a long-lived server.
#if defined(MSG_NOSIGNAL)
      const ssize_t n =
          ::send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
#else
      const ssize_t n = ::write(fd_, out.data() + off, out.size() - off);
#endif
      if (n < 0 && errno == EINTR) continue;  // retry, or the line tears
      if (n <= 0) return;  // client went away; the read loop will notice
      off += static_cast<std::size_t>(n);
    }
  }

 private:
  /// Append at least one byte to the buffer; false on EOF/error/stop.
  bool fill(const std::stop_token& stop) {
    while (true) {
      pollfd pfd{fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, 500);
      if (stop.stop_requested()) return false;
      if (ready < 0 && errno != EINTR) return false;
      if (ready <= 0) continue;
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
      return true;
    }
  }

  int fd_;
  bool close_on_destroy_;
  std::string buffer_;
  std::size_t pos_ = 0;
};

}  // namespace

bool listen_available() { return true; }

void serve_stdin(Server& server, const std::stop_token& stop) {
  server.hello();
  Connection input(0, /*close_on_destroy=*/false);
  std::string line;
  while (!stop.stop_requested() && input.read_line(line, stop)) {
    if (!server.handle_line(line)) break;
  }
  server.drain();
}

int listen_and_serve(std::uint16_t port, const ServerOptions& options) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    util::log_error() << "serve: socket(): " << std::strerror(errno);
    return 1;
  }
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listener, 4) < 0) {
    util::log_error() << "serve: cannot listen on 127.0.0.1:" << port << ": "
                      << std::strerror(errno);
    ::close(listener);
    return 1;
  }
  util::log_info() << "serve: listening on 127.0.0.1:" << port;

  bool shutdown_requested = false;
  while (!shutdown_requested && !options.stop.stop_requested()) {
    // Poll with a timeout so a stop request (Ctrl-C) is noticed between
    // connections, not only at the next accept.
    pollfd pfd{listener, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 500);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) continue;
#if defined(SO_NOSIGPIPE)
    // BSD/macOS counterpart of MSG_NOSIGNAL above.
    ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#endif
    Connection connection(fd);
    Server server(options,
                  [&connection](const std::string& line) {
                    connection.write_line(line);
                  });
    server.hello();
    std::string line;
    while (!options.stop.stop_requested() &&
           connection.read_line(line, options.stop)) {
      if (!server.handle_line(line)) {
        shutdown_requested = true;
        break;
      }
    }
    server.drain();
  }
  ::close(listener);
  return 0;
}

#else  // !LRSIZER_HAVE_SOCKETS

bool listen_available() { return false; }

int listen_and_serve(std::uint16_t, const ServerOptions&) {
  util::log_error() << "serve: --listen is unavailable on this platform "
                       "(no BSD sockets); use stdin-jsonl mode";
  return 1;
}

void serve_stdin(Server& server, const std::stop_token&) {
  server.serve_stream(std::cin);
}

#endif

}  // namespace lrsizer::serve
