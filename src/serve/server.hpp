// The long-lived sizing service behind `lrsizer serve`.
//
// A Server reads lrsizer-serve-v3 request lines (serve/protocol.hpp),
// schedules each size job as one api::SizingSession on a
// runtime::ThreadPool, and streams responses — accepted, periodic progress
// (from the session's IterationObserver), then exactly one terminal
// result / cancelled / error per job — through per-client line sinks.
// Responses for different jobs interleave; per job the order is always
// accepted → progress* → terminal.
//
// Reliability (docs/RELIABILITY.md): jobs carry deadlines (request
// "deadline_ms" or --default-deadline-ms) enforced by a watchdog thread
// that fires the job's stop_source — the session yields its best partial
// result, answered as a result with "timeout": true. Admission control
// layers a cost budget (Σ pending node counts) and a per-client fairness
// cap on top of the flat max_pending; shed jobs get an `overloaded` error
// with a retry_after_ms hint. begin_drain() flips the server into drain
// mode: new size requests are rejected with code `shutdown` while accepted
// work finishes (or deadlines out), which is the SIGTERM path.
//
// Clients: a Server fans in any number of clients (add_client/remove_client),
// each with its own sink. Job ids are scoped per client — two clients may
// both run a job named "a" — and a cancel only reaches the canceller's own
// jobs. Removing a client cancels its in-flight jobs and drops any response
// still heading its way; the cache entries its jobs produced stay shared.
//
// Every job is deduped through a runtime::ResultCache: completed identical
// jobs answer instantly with the stored report (byte-identical payload),
// and an identical job arriving while its twin is still running attaches
// as a follower and shares the result when it lands (in-flight dedupe) —
// including across clients. A caller-supplied cache can be disk-backed and
// shared across restarts; by default the server owns a memory-only cache.
//
// Threading: calls for one client must be serialized (lines have an order),
// but different clients' handle_line calls may run concurrently. Each sink
// is invoked from read threads and pool workers, one complete line per
// call, serialized per client by an internal mutex — it only needs to
// write and flush. drain() blocks until every accepted job has emitted its
// terminal response.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <istream>
#include <memory>
#include <mutex>
#include <queue>
#include <stop_token>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/flow.hpp"
#include "obs/registry.hpp"
#include "runtime/cache.hpp"
#include "runtime/pool.hpp"
#include "serve/protocol.hpp"
#include "serve/stats.hpp"

namespace lrsizer::serve {

struct ServerOptions {
  /// Concurrent jobs (pool workers); clamped to >= 1.
  int jobs = 1;
  /// Defaults for every job; request "options" objects override per job.
  core::FlowOptions base_options;
  /// Result cache (borrowed, must outlive the server; may be shared with
  /// run_batch or other servers). nullptr: the server owns a memory-only
  /// cache.
  runtime::ResultCache* cache = nullptr;
  /// Budget for the owned cache (ignored when `cache` is supplied — a
  /// borrowed cache brings its own limits).
  runtime::CacheLimits cache_limits;
  /// On a cache miss, warm-start from a cached result with the same
  /// netlist + elaboration but different solver/bound options (see
  /// BatchOptions::cache_warm for the determinism trade-off).
  bool cache_warm = false;
  /// On a cache miss, ECO warm-start from the cached base sharing the most
  /// output cones with the request's netlist (ResultCache::lookup_eco),
  /// seeding clean-net sizes and — when the circuit shape matches — the
  /// multiplier state (docs/ECO.md). A request naming "eco_base" uses its
  /// named base regardless of this flag. Same determinism trade-off as
  /// cache_warm: the seeded run is not bit-identical to a cold run.
  bool eco = false;
  /// Backpressure: with > 0, a size request arriving while this many jobs
  /// are already accepted-but-unfinished is rejected with an `overloaded`
  /// error response (the client retries after its retry_after_ms hint).
  /// 0 = unbounded queue.
  int max_pending = 0;
  /// Fairness: with > 0, one client may have at most this many jobs
  /// accepted-but-unfinished; beyond it the request is shed `overloaded`
  /// even when global budgets have room, so a greedy client cannot starve
  /// the rest. 0 = no per-client cap.
  int max_pending_per_client = 0;
  /// Cost-aware admission: with > 0, a size request whose estimated cost
  /// (logic node count) would push Σ pending costs past this budget is
  /// shed `overloaded`. An empty queue always admits — one over-budget job
  /// is allowed to run alone rather than being unservable. 0 = no budget.
  std::int64_t max_queue_cost = 0;
  /// Deadline applied to jobs whose request names none (ms, from
  /// admission). A request's "deadline_ms" overrides, including 0 = none.
  /// 0 here = no default deadline.
  std::int64_t default_deadline_ms = 0;
  /// A request line longer than this is rejected with an error response
  /// instead of being buffered without bound (enforced by the TCP
  /// front-end, which is the one reading from untrusted peers).
  std::size_t max_line_bytes = 8u << 20;
  /// Server-wide cooperative shutdown (e.g. SIGINT): running jobs are
  /// cancelled mid-OGWS and answer `cancelled`.
  std::stop_token stop;
  /// Reported in the hello message, the stats response and the
  /// lrsizer_build_info metric.
  std::string version;
  /// Telemetry registry (borrowed, must outlive the server). The server
  /// publishes every counter it keeps — job admissions, terminal responses,
  /// cache traffic, queue depth, job latency — into it; stats_snapshot()
  /// reads the same instruments back, so the jsonl stats response and a
  /// /metrics scrape can never disagree. nullptr: the server owns a private
  /// registry (reachable via registry()). Sharing one registry between
  /// servers merges their series — intended for a registry shared with
  /// run_batch, not for two servers.
  obs::Registry* registry = nullptr;
};

class Server {
 public:
  /// `sink` receives every response as one complete line (no trailing
  /// newline); it must write-and-flush so clients see responses promptly.
  using Sink = std::function<void(const std::string& line)>;
  /// Handle for one attached client; scopes job ids and owns one sink.
  using ClientId = std::uint64_t;

  /// Multi-client server: attach clients with add_client().
  explicit Server(ServerOptions options);
  /// Single-client convenience: `sink` becomes the default client that the
  /// id-less hello()/handle_line() overloads talk to.
  Server(ServerOptions options, Sink sink);
  /// Drains in-flight jobs (equivalent to drain()).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Attach a client. Its sink may be called until remove_client returns.
  ClientId add_client(Sink sink);
  /// Detach: cancels the client's in-flight jobs, drops pending responses
  /// to it, and guarantees its sink is never called again after return.
  void remove_client(ClientId client);
  std::size_t active_clients() const;

  /// Emit the hello line (schema, version, workers, cache mode).
  void hello(ClientId client);
  void hello();  ///< default client

  /// Handle one request line for this client (empty/blank lines are
  /// ignored). Returns false when the line was a shutdown request — the
  /// caller should stop reading and drain().
  bool handle_line(ClientId client, const std::string& line);
  bool handle_line(const std::string& line);  ///< default client

  /// Emit an error response to this client without parsing anything — the
  /// TCP front-end's path for lines it refuses to buffer (oversized).
  void reject(ClientId client, const std::string& message);

  /// Block until every accepted job has emitted its terminal response.
  void drain();

  /// Enter drain mode (idempotent, callable from any thread — including a
  /// signal-watcher): new size requests are rejected with code `shutdown`,
  /// in-flight jobs run to their terminal response (or their deadline),
  /// stats reports state "draining" and /healthz turns 503. There is no way
  /// back to serving.
  void begin_drain();
  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }
  /// True when no accepted job is awaiting its terminal response — together
  /// with draining(), the front-end's "drain complete, exit now" signal.
  bool idle() const;

  /// hello + read lines until EOF or shutdown + drain (default client).
  /// Returns 0.
  int serve_stream(std::istream& in);

  const ServerOptions& options() const { return options_; }

  /// The telemetry registry this server publishes into — the caller's
  /// (ServerOptions::registry) or the server-owned default. The HTTP
  /// /metrics endpoint renders registry().snapshot().
  obs::Registry& registry() const { return *registry_; }

  /// Job counters, re-read from the registry instruments (the registry is
  /// the single source of truth; this struct is the legacy in-process view).
  struct Stats {
    std::size_t accepted = 0;   ///< size requests admitted
    std::size_t completed = 0;  ///< result responses (hit or cold)
    std::size_t cache_hits = 0; ///< results answered without running
    std::size_t cancelled = 0;  ///< cancelled responses
    std::size_t timeouts = 0;   ///< jobs cut by their deadline
    std::size_t errors = 0;     ///< error responses (parse + job failures)
    std::size_t shed = 0;       ///< jobs rejected by admission control
  };
  Stats stats() const;

  /// Everything the stats response carries: job counters, queue depth,
  /// client count, cache counters, and p50/p99 job latency.
  StatsSnapshot stats_snapshot() const;

 private:
  /// One accepted job from admission to its terminal response. Kept whole
  /// (including the netlist) so a follower whose owner aborted can re-run.
  struct Pending {
    ClientId client = 0;
    SizeRequest request;
    std::string scoped_id;  ///< "<client>:<id>" — the active_ key
    runtime::CacheKey key;
    bool cacheable = false;
    std::stop_source stop;
    std::chrono::steady_clock::time_point accepted_at;
    /// Admission cost (logic node count), released by finish().
    std::int64_t cost = 0;
    /// Deadline bookkeeping: armed at admission when the effective deadline
    /// is > 0. The watchdog sets timed_out *before* firing stop, so the
    /// terminal path can tell a deadline cut from a client cancel.
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
    std::atomic<bool> timed_out{false};
    /// ECO seeding accounting (schedule() fills it, execute() embeds it as
    /// the job's "eco" block). eco_base empty: the job was not ECO-seeded.
    std::string eco_base;
    std::int64_t eco_reused_nodes = 0;
    std::int32_t eco_dirty_gates = 0;
  };

  /// One attached client. The mutex serializes its sink; a removed client
  /// keeps its (empty) slot alive through shared_ptrs held by in-flight
  /// emitters, which then find no sink and drop the line.
  struct Client {
    std::mutex mutex;
    Sink sink;
  };

  /// Wire every instrument and callback metric into registry_ (ctor tail;
  /// callbacks are tagged with `this` and dropped again in the destructor).
  void register_metrics();
  void emit(ClientId client, const runtime::Json& response);
  /// Route through the cache (hit / follower / owner) or straight to the
  /// pool. Safe to call from read threads and from follower callbacks.
  void schedule(std::shared_ptr<Pending> pending);
  /// Run the job on the current (worker) thread and emit its terminal
  /// response; publishes/abandons the cache key for owners.
  void execute(const std::shared_ptr<Pending>& pending);
  void finish(const std::shared_ptr<Pending>& pending);
  void handle_size(ClientId client, SizeRequest request);
  void handle_cancel(ClientId client, const std::string& id);
  /// Register `pending` with the deadline watchdog (lazily starting it).
  void arm_deadline(const std::shared_ptr<Pending>& pending);
  void watchdog_loop();
  /// Backoff hint for `overloaded` rejections: scaled from the p50 job
  /// latency and the queue depth, clamped to [50, 10000] ms.
  std::int64_t retry_after_ms(std::size_t depth) const;

  ServerOptions options_;
  std::unique_ptr<runtime::ResultCache> owned_cache_;
  runtime::ResultCache* cache_ = nullptr;
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_ = nullptr;

  // Owned instruments (stable pointers into registry_). Counter writes are
  // lock-free, so the job counters no longer live under mutex_.
  obs::Counter* accepted_total_ = nullptr;
  obs::Counter* results_total_ = nullptr;    ///< responses_total{type="result"}
  obs::Counter* cancelled_total_ = nullptr;  ///< responses_total{type="cancelled"}
  obs::Counter* errors_total_ = nullptr;     ///< responses_total{type="error"}
  obs::Counter* timeouts_total_ = nullptr;   ///< lrsizer_jobs_timeout_total
  obs::Counter* shed_total_ = nullptr;       ///< lrsizer_serve_shed_total
  obs::Counter* cache_hits_total_ = nullptr;
  obs::Counter* eco_jobs_total_ = nullptr;          ///< lrsizer_eco_jobs_total
  obs::Counter* eco_reused_nodes_total_ = nullptr;  ///< lrsizer_eco_reused_nodes_total
  obs::Counter* eco_dirty_gates_total_ = nullptr;   ///< lrsizer_eco_dirty_gates_total
  obs::Histogram* latency_seconds_ = nullptr;

  std::chrono::steady_clock::time_point start_steady_{};
  double start_unix_s_ = 0.0;  ///< system clock at construction (Unix seconds)

  /// Guards clients_/next_client_ only — never held while mutex_ or a
  /// Client::mutex is taken by the same thread's caller (emit locks them
  /// strictly in sequence, not nested).
  mutable std::mutex clients_mutex_;
  std::unordered_map<ClientId, std::shared_ptr<Client>> clients_;
  ClientId next_client_ = 1;
  ClientId default_client_ = 0;  ///< 0 = none (multi-client ctor)

  /// Set by begin_drain(); read lock-free on the request path.
  std::atomic<bool> draining_{false};

  mutable std::mutex mutex_;  ///< guards active_, in_flight_, queue_cost_,
                              ///< client_pending_
  std::condition_variable idle_cv_;
  /// scoped_id -> job; ids live in per-client namespaces.
  std::unordered_map<std::string, std::shared_ptr<Pending>> active_;
  std::size_t in_flight_ = 0;
  /// Σ Pending::cost of accepted-but-unfinished jobs (admission budget).
  std::int64_t queue_cost_ = 0;
  /// Accepted-but-unfinished jobs per client (fairness cap); entries are
  /// erased when they reach zero.
  std::unordered_map<ClientId, int> client_pending_;

  /// Deadline watchdog: a min-heap of (deadline, job) serviced by one
  /// lazily-started thread that fires each job's stop_source on time.
  /// weak_ptr so a finished job just evaporates from the heap.
  struct DeadlineEntry {
    std::chrono::steady_clock::time_point when;
    std::weak_ptr<Pending> job;
    bool operator>(const DeadlineEntry& other) const {
      return when > other.when;
    }
  };
  std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;
  std::priority_queue<DeadlineEntry, std::vector<DeadlineEntry>,
                      std::greater<DeadlineEntry>>
      deadlines_;
  bool watchdog_exit_ = false;
  std::thread watchdog_;  ///< joinable iff a deadline was ever armed

  runtime::ThreadPool pool_;  ///< last member: workers die before the rest
};

}  // namespace lrsizer::serve
