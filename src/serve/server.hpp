// The long-lived sizing service behind `lrsizer serve`.
//
// A Server reads lrsizer-serve-v1 request lines (serve/protocol.hpp),
// schedules each size job as one api::SizingSession on a
// runtime::ThreadPool, and streams responses — accepted, periodic progress
// (from the session's IterationObserver), then exactly one terminal
// result / cancelled / error per job — through a caller-supplied line sink.
// Responses for different jobs interleave; per job the order is always
// accepted → progress* → terminal.
//
// Every job is deduped through a runtime::ResultCache: completed identical
// jobs answer instantly with the stored report (byte-identical payload),
// and an identical job arriving while its twin is still running attaches
// as a follower and shares the result when it lands (in-flight dedupe). A
// caller-supplied cache can be disk-backed and shared across restarts; by
// default the server owns a memory-only cache for its lifetime.
//
// Threading: handle_line() must be called from one thread (the read loop).
// The sink is invoked from the read thread and from pool workers, one
// complete line per call, serialized by an internal mutex — it only needs
// to write and flush. drain() blocks until every accepted job has emitted
// its terminal response.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <istream>
#include <memory>
#include <mutex>
#include <stop_token>
#include <string>
#include <unordered_map>

#include "core/flow.hpp"
#include "runtime/cache.hpp"
#include "runtime/pool.hpp"
#include "serve/protocol.hpp"

namespace lrsizer::serve {

struct ServerOptions {
  /// Concurrent jobs (pool workers); clamped to >= 1.
  int jobs = 1;
  /// Defaults for every job; request "options" objects override per job.
  core::FlowOptions base_options;
  /// Result cache (borrowed, must outlive the server; may be shared with
  /// run_batch or other servers). nullptr: the server owns a memory-only
  /// cache.
  runtime::ResultCache* cache = nullptr;
  /// On a cache miss, warm-start from a cached result with the same
  /// netlist + elaboration but different solver/bound options (see
  /// BatchOptions::cache_warm for the determinism trade-off).
  bool cache_warm = false;
  /// Backpressure: with > 0, a size request arriving while this many jobs
  /// are already accepted-but-unfinished is rejected with an error
  /// response (the client retries later). 0 = unbounded queue.
  int max_pending = 0;
  /// Server-wide cooperative shutdown (e.g. SIGINT): running jobs are
  /// cancelled mid-OGWS and answer `cancelled`.
  std::stop_token stop;
  /// Reported in the hello message.
  std::string version;
};

class Server {
 public:
  /// `sink` receives every response as one complete line (no trailing
  /// newline); it must write-and-flush so clients see responses promptly.
  using Sink = std::function<void(const std::string& line)>;

  Server(ServerOptions options, Sink sink);
  /// Drains in-flight jobs (equivalent to drain()).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Emit the hello line (schema, version, workers, cache mode).
  void hello();

  /// Handle one request line (empty/blank lines are ignored). Returns
  /// false when the line was a shutdown request — the caller should stop
  /// reading and drain().
  bool handle_line(const std::string& line);

  /// Block until every accepted job has emitted its terminal response.
  void drain();

  /// hello + read lines until EOF or shutdown + drain. Returns 0.
  int serve_stream(std::istream& in);

  struct Stats {
    std::size_t accepted = 0;   ///< size requests admitted
    std::size_t completed = 0;  ///< result responses (hit or cold)
    std::size_t cache_hits = 0; ///< results answered without running
    std::size_t cancelled = 0;  ///< cancelled responses
    std::size_t errors = 0;     ///< error responses (parse + job failures)
  };
  Stats stats() const;

 private:
  /// One accepted job from admission to its terminal response. Kept whole
  /// (including the netlist) so a follower whose owner aborted can re-run.
  struct Pending {
    SizeRequest request;
    runtime::CacheKey key;
    bool cacheable = false;
    std::stop_source stop;
  };

  void emit(const runtime::Json& response);
  /// Route through the cache (hit / follower / owner) or straight to the
  /// pool. Safe to call from the read thread and from follower callbacks.
  void schedule(std::shared_ptr<Pending> pending);
  /// Run the job on the current (worker) thread and emit its terminal
  /// response; publishes/abandons the cache key for owners.
  void execute(const std::shared_ptr<Pending>& pending);
  void finish(const std::shared_ptr<Pending>& pending);
  void handle_size(SizeRequest request);
  void handle_cancel(const std::string& id);

  ServerOptions options_;
  Sink sink_;
  std::unique_ptr<runtime::ResultCache> owned_cache_;
  runtime::ResultCache* cache_ = nullptr;

  std::mutex sink_mutex_;

  mutable std::mutex mutex_;  ///< guards active_, in_flight_, stats_
  std::condition_variable idle_cv_;
  std::unordered_map<std::string, std::shared_ptr<Pending>> active_;
  std::size_t in_flight_ = 0;
  Stats stats_;

  runtime::ThreadPool pool_;  ///< last member: workers die before the rest
};

}  // namespace lrsizer::serve
