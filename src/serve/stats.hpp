// Fleet-observability surface of the serve loop: the counters and latency
// distribution behind the `{"type":"stats"}` request (lrsizer-serve-v3,
// docs/SERVING.md) and `lrsizer serve --stats-dump`.
//
// Latency percentiles are derived from the obs latency histogram
// (lrsizer_serve_job_latency_seconds) — the same instrument a /metrics
// scrape renders — so the stats response and Prometheus can never disagree
// about the distribution. histogram_percentile() is the one estimator.
#pragma once

#include <cstddef>
#include <string>

namespace lrsizer::obs {
class Histogram;
}

namespace lrsizer::serve {

/// Percentile estimate from a fixed-bucket histogram, p in [0, 100].
/// Nearest-rank bucket selection (rank = ceil(p/100 · count), min 1) with
/// linear interpolation inside the chosen bucket, so any non-empty
/// histogram yields a strictly positive estimate. Observations landing in
/// the +Inf overflow bucket are reported as the largest finite bound (the
/// Prometheus histogram_quantile convention). 0.0 when count is zero.
double histogram_percentile(const obs::Histogram& histogram, double p);

/// One coherent picture of a Server (job counters, queue, clients, cache,
/// latency) — what the stats response and --stats-dump serialize.
struct StatsSnapshot {
  // Server identity (v2-additive: absent from pre-0.6 stats responses).
  std::string version;          ///< build version (ServerOptions::version)
  std::string state = "serving";   ///< "serving" or "draining" (v3)
  double start_time_unix_s = 0.0;  ///< Unix time the server started
  double uptime_s = 0.0;           ///< seconds since start (steady clock)
  // Job counters (monotonic since server start).
  std::size_t accepted = 0;    ///< size requests admitted
  std::size_t completed = 0;   ///< result responses (hit or cold)
  std::size_t cache_hits = 0;  ///< results answered without running
  std::size_t cancelled = 0;   ///< cancelled responses
  std::size_t timeouts = 0;    ///< jobs cut by their deadline (v3)
  std::size_t errors = 0;      ///< error responses (parse + job failures)
  std::size_t shed = 0;        ///< jobs rejected by admission control (v3)
  std::size_t eco_jobs = 0;    ///< jobs warm-started from an ECO base
  // Point-in-time gauges.
  std::size_t queue_depth = 0;     ///< jobs accepted but not yet terminal
  std::size_t active_clients = 0;  ///< connected clients
  // Result-cache counters (runtime::ResultCache::stats()). Hit kinds are
  // disjoint: exact / warm / eco (docs/SERVING.md §Cache semantics).
  std::size_t cache_entries = 0;
  std::size_t cache_bytes = 0;
  std::size_t cache_lookup_hits = 0;    ///< exact-key hits
  std::size_t cache_lookup_misses = 0;
  std::size_t cache_warm_hits = 0;      ///< lookup_warm answers
  std::size_t cache_eco_hits = 0;       ///< ECO base answers
  std::size_t cache_evictions = 0;
  std::size_t cache_corrupt = 0;  ///< disk entries quarantined as corrupt (v3)
  bool cache_disk = false;
  // Job latency (seconds, accepted → terminal), derived from the obs
  // latency histogram.
  std::size_t latency_count = 0;
  double latency_p50_s = 0.0;
  double latency_p99_s = 0.0;
};

/// Cache hit rate over completed lookups, in [0, 1] (0 when none yet).
/// Exact hits only — warm/eco reuse still runs the flow, so it is not a
/// "hit" in the answered-without-running sense.
double cache_hit_rate(const StatsSnapshot& snapshot);

/// Human-readable multi-line rendering — what `--stats-dump` prints on
/// shutdown.
std::string format_stats_text(const StatsSnapshot& snapshot);

}  // namespace lrsizer::serve
