// Fleet-observability surface of the serve loop: the counters and latency
// distribution behind the `{"type":"stats"}` request (lrsizer-serve-v2,
// docs/SERVING.md) and `lrsizer serve --stats-dump`.
//
// LatencyRing keeps the most recent job latencies in a fixed ring so the
// p50/p99 estimates track current behavior instead of averaging over the
// server's whole life; memory stays O(capacity) no matter how many jobs
// run. Neither type locks — the Server records and snapshots under its own
// mutex.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace lrsizer::serve {

/// Fixed-capacity ring of recent job latencies (seconds, accepted →
/// terminal response). Percentiles are nearest-rank over the retained
/// window.
class LatencyRing {
 public:
  explicit LatencyRing(std::size_t capacity = 4096);

  void record(double seconds);

  /// Total latencies ever recorded (not capped by the window).
  std::size_t count() const { return count_; }

  /// Nearest-rank percentile over the retained window, p in [0, 100];
  /// 0.0 when nothing was recorded yet.
  double percentile(double p) const;

 private:
  std::vector<double> ring_;
  std::size_t next_ = 0;    ///< write cursor
  std::size_t filled_ = 0;  ///< valid slots (== capacity once wrapped)
  std::size_t count_ = 0;
};

/// One coherent picture of a Server (job counters, queue, clients, cache,
/// latency) — what the stats response and --stats-dump serialize.
struct StatsSnapshot {
  // Server identity (v2-additive: absent from pre-0.6 stats responses).
  std::string version;          ///< build version (ServerOptions::version)
  double start_time_unix_s = 0.0;  ///< Unix time the server started
  double uptime_s = 0.0;           ///< seconds since start (steady clock)
  // Job counters (monotonic since server start).
  std::size_t accepted = 0;    ///< size requests admitted
  std::size_t completed = 0;   ///< result responses (hit or cold)
  std::size_t cache_hits = 0;  ///< results answered without running
  std::size_t cancelled = 0;   ///< cancelled responses
  std::size_t errors = 0;      ///< error responses (parse + job failures)
  // Point-in-time gauges.
  std::size_t queue_depth = 0;     ///< jobs accepted but not yet terminal
  std::size_t active_clients = 0;  ///< connected clients
  // Result-cache counters (runtime::ResultCache::stats()).
  std::size_t cache_entries = 0;
  std::size_t cache_bytes = 0;
  std::size_t cache_lookup_hits = 0;
  std::size_t cache_lookup_misses = 0;
  std::size_t cache_evictions = 0;
  bool cache_disk = false;
  // Job latency (seconds, accepted → terminal), recent-window percentiles.
  std::size_t latency_count = 0;
  double latency_p50_s = 0.0;
  double latency_p99_s = 0.0;
};

/// Cache hit rate over completed lookups, in [0, 1] (0 when none yet).
double cache_hit_rate(const StatsSnapshot& snapshot);

/// Human-readable multi-line rendering — what `--stats-dump` prints on
/// shutdown.
std::string format_stats_text(const StatsSnapshot& snapshot);

}  // namespace lrsizer::serve
