// TCP front-end for the serve loop (`lrsizer serve --listen <port>`).
//
// Accepts connections on 127.0.0.1:<port> and speaks lrsizer-serve-v1 over
// each, one client at a time (the next connection is accepted after the
// current one disconnects or sends shutdown) — the simple single-tenant
// shape docs/SERVING.md specifies; multi-client fan-in belongs to a fronting
// proxy. The shared ServerOptions (including its cache pointer) carries
// across connections, so a reconnecting client still hits the cache.
//
// POSIX-only: on platforms without BSD sockets, listen_available() is false
// and listen_and_serve fails immediately.
#pragma once

#include <cstdint>

#include "serve/server.hpp"

namespace lrsizer::serve {

/// True when this build can open TCP listen sockets.
bool listen_available();

/// Serve until `options.stop` is requested or a client sends shutdown.
/// Returns 0 on clean shutdown, 1 when the socket could not be opened (the
/// reason is logged).
int listen_and_serve(std::uint16_t port, const ServerOptions& options);

/// The stdin counterpart of the TCP loop: hello + read request lines from
/// fd 0 + drain, with POSIX poll-gated reads so a stop request (Ctrl-C) is
/// noticed within ~500 ms even while stdin is idle. On platforms without
/// poll this degrades to Server::serve_stream's blocking std::getline.
void serve_stdin(Server& server, const std::stop_token& stop);

}  // namespace lrsizer::serve
