// TCP front-end for the serve loop (`lrsizer serve --listen <port>`).
//
// A single poll(2) event loop on 127.0.0.1:<port> fans any number of
// concurrent clients into one shared Server: per-connection line buffers on
// the read side, per-client serialized sinks on the write side (the Server
// guarantees whole-line writes per client). All clients share the server's
// ThreadPool, ResultCache, and backpressure budget; job ids are scoped per
// client. One client sending `shutdown` stops the whole service — it is an
// operator verb, not a disconnect (docs/SERVING.md §Transports).
//
// The loop itself is single-threaded: it only moves bytes and feeds
// complete lines to Server::handle_line; all sizing work happens on the
// pool. A connection that disconnects mid-job has its jobs cancelled and
// its remaining responses dropped (Server::remove_client).
//
// POSIX-only: on platforms without BSD sockets, listen_available() is false
// and listen_and_serve fails immediately.
#pragma once

#include <atomic>
#include <cstdint>

#include "serve/server.hpp"

namespace lrsizer::serve {

/// True when this build can open TCP listen sockets.
bool listen_available();

/// Front-end configuration for listen_and_serve.
struct ListenOptions {
  /// jsonl port on 127.0.0.1; 0 binds an ephemeral port.
  std::uint16_t port = 0;
  /// HTTP observability port on 127.0.0.1 (GET /metrics in Prometheus text
  /// format, GET /healthz), multiplexed into the same poll loop as the
  /// jsonl port. 0 binds an ephemeral port; -1 (default) disables the
  /// endpoint entirely.
  int metrics_port = -1;
  /// Actual bound ports, written once each socket is listening (for
  /// launch-tooling that passes port 0). May be null.
  std::atomic<std::uint16_t>* bound_port = nullptr;
  std::atomic<std::uint16_t>* metrics_bound_port = nullptr;
};

/// Serve `server` until `server.options().stop` is requested or a client
/// sends shutdown. Ports 0 bind ephemeral ports; the actual ports are
/// written to the ListenOptions out-pointers once each socket is listening
/// and always announced on stderr ("listening on 127.0.0.1:<port>" /
/// "metrics on 127.0.0.1:<port>"). Returns 0 on clean shutdown, 1 when a
/// socket could not be opened (the reason is logged). The caller owns the
/// Server and can read stats after return.
int listen_and_serve(const ListenOptions& options, Server& server);

/// jsonl-only convenience overload (no metrics endpoint).
int listen_and_serve(std::uint16_t port, Server& server,
                     std::atomic<std::uint16_t>* bound_port = nullptr);

/// The stdin counterpart of the TCP loop: hello + read request lines from
/// fd 0 + drain, with POSIX poll-gated reads so a stop request (Ctrl-C) is
/// noticed within ~500 ms even while stdin is idle. On platforms without
/// poll this degrades to Server::serve_stream's blocking std::getline.
void serve_stdin(Server& server, const std::stop_token& stop);

}  // namespace lrsizer::serve
