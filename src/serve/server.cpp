#include "serve/server.hpp"

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "eco/incremental.hpp"
#include "fault/fault.hpp"
#include "netlist/cone_hash.hpp"
#include "netlist/logic_netlist.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace lrsizer::serve {

using runtime::CachedEntry;
using runtime::Json;
using runtime::ResultCache;

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      start_steady_(std::chrono::steady_clock::now()),
      start_unix_s_(std::chrono::duration<double>(
                        std::chrono::system_clock::now().time_since_epoch())
                        .count()),
      pool_(options_.jobs >= 1 ? options_.jobs : 1) {
  if (options_.cache) {
    cache_ = options_.cache;
  } else {
    owned_cache_ = std::make_unique<ResultCache>("", options_.cache_limits);
    cache_ = owned_cache_.get();
  }
  if (options_.registry) {
    registry_ = options_.registry;
  } else {
    owned_registry_ = std::make_unique<obs::Registry>();
    registry_ = owned_registry_.get();
  }
  register_metrics();
}

Server::Server(ServerOptions options, Sink sink)
    : Server(std::move(options)) {
  default_client_ = add_client(std::move(sink));
}

Server::~Server() {
  drain();
  // Stop the deadline watchdog (started lazily, so it may never have run).
  {
    const std::lock_guard<std::mutex> lock(watchdog_mutex_);
    watchdog_exit_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  // Callback metrics read through `this` (cache_, pool_, in_flight_); drop
  // them before any member dies. Owned counters stay — on a borrowed
  // registry they simply stop moving, which is the right scrape semantics.
  registry_->remove_owner(this);
}

void Server::register_metrics() {
  obs::Registry& reg = *registry_;
  const char* responses_help =
      "Terminal responses emitted, by type (result, cancelled, error).";
  accepted_total_ =
      reg.counter("lrsizer_serve_accepted_total", "Size requests admitted.");
  results_total_ = reg.counter("lrsizer_serve_responses_total", responses_help,
                               {{"type", "result"}});
  cancelled_total_ = reg.counter("lrsizer_serve_responses_total",
                                 responses_help, {{"type", "cancelled"}});
  errors_total_ = reg.counter("lrsizer_serve_responses_total", responses_help,
                              {{"type", "error"}});
  timeouts_total_ = reg.counter(
      "lrsizer_jobs_timeout_total",
      "Jobs whose deadline fired before completion (answered as a "
      "timeout-marked partial result, or a deadline error).");
  shed_total_ = reg.counter(
      "lrsizer_serve_shed_total",
      "Size requests rejected `overloaded` by admission control "
      "(backpressure, queue-cost budget, per-client fairness cap).");
  cache_hits_total_ = reg.counter(
      "lrsizer_serve_cache_hits_total",
      "Result responses answered without running the flow (cache or dedupe).");
  const char* eco_help_jobs =
      "Jobs warm-started from a cached ECO base (named or auto-detected).";
  eco_jobs_total_ = reg.counter("lrsizer_eco_jobs_total", eco_help_jobs);
  eco_reused_nodes_total_ = reg.counter(
      "lrsizer_eco_reused_nodes_total",
      "Circuit nodes seeded from an ECO base across all ECO jobs.");
  eco_dirty_gates_total_ = reg.counter(
      "lrsizer_eco_dirty_gates_total",
      "Gates with no cone match in their ECO base (the edits plus fan-out).");
  latency_seconds_ = reg.histogram(
      "lrsizer_serve_job_latency_seconds",
      "Job latency from admission to terminal response, in seconds.",
      {0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
       60.0});
  reg.gauge("lrsizer_build_info",
            "Build metadata carried in labels; the value is always 1.",
            {{"version", options_.version}})
      ->set(1.0);
  reg.gauge("lrsizer_serve_start_time_seconds",
            "Unix time the server started, in seconds.")
      ->set(start_unix_s_);
  reg.gauge("lrsizer_pool_workers", "Job-level worker threads in the pool.")
      ->set(static_cast<double>(pool_.num_workers()));
  reg.gauge("lrsizer_cache_disk_backed",
            "1 when the result cache persists to disk, 0 for memory-only.")
      ->set(cache_->disk_backed() ? 1.0 : 0.0);

  // Callback metrics: the source of truth lives in another subsystem and is
  // read at scrape time. All tagged with `this` for the destructor.
  reg.gauge_fn("lrsizer_serve_uptime_seconds",
               "Seconds since the server started (steady clock).", {},
               [this] {
                 return std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start_steady_)
                     .count();
               },
               this);
  reg.gauge_fn("lrsizer_serve_queue_depth",
               "Jobs admitted but not yet answered with a terminal response.",
               {},
               [this] {
                 const std::lock_guard<std::mutex> lock(mutex_);
                 return static_cast<double>(in_flight_);
               },
               this);
  reg.gauge_fn("lrsizer_serve_clients", "Attached clients.", {},
               [this] { return static_cast<double>(active_clients()); }, this);
  reg.gauge_fn("lrsizer_cache_entries", "Completed entries in the result cache.",
               {}, [this] { return static_cast<double>(cache_->stats().entries); },
               this);
  reg.gauge_fn("lrsizer_cache_bytes",
               "Estimated bytes held by the result cache.", {},
               [this] { return static_cast<double>(cache_->stats().bytes); },
               this);
  // Disjoint hit kinds (docs/SERVING.md §Cache semantics): exact-key
  // answers, warm-start seeds, ECO base seeds.
  const char* cache_hits_help =
      "Result-cache lookups answered from a completed entry, by kind "
      "(exact, warm, eco).";
  reg.counter_fn("lrsizer_cache_hits_total", cache_hits_help,
                 {{"kind", "exact"}},
                 [this] { return static_cast<double>(cache_->stats().hits); },
                 this);
  reg.counter_fn(
      "lrsizer_cache_hits_total", cache_hits_help, {{"kind", "warm"}},
      [this] { return static_cast<double>(cache_->stats().warm_hits); }, this);
  reg.counter_fn(
      "lrsizer_cache_hits_total", cache_hits_help, {{"kind", "eco"}},
      [this] { return static_cast<double>(cache_->stats().eco_hits); }, this);
  reg.counter_fn("lrsizer_cache_misses_total", "Result-cache lookup misses.",
                 {},
                 [this] { return static_cast<double>(cache_->stats().misses); },
                 this);
  reg.counter_fn(
      "lrsizer_cache_evictions_total",
      "Entries evicted from the result cache by the LRU budget.", {},
      [this] { return static_cast<double>(cache_->stats().evictions); }, this);
  reg.counter_fn(
      "lrsizer_cache_corrupt_total",
      "Disk-cache entries that failed parse or checksum verification and "
      "were quarantined to <key>.corrupt.", {},
      [this] { return static_cast<double>(cache_->stats().corrupt); }, this);
  reg.gauge_fn("lrsizer_serve_draining",
               "1 once the server entered drain mode (begin_drain), else 0.",
               {}, [this] { return draining() ? 1.0 : 0.0; }, this);
  // One series per fault point armed at construction time (the CLI arms
  // --fault-inject/LRSIZER_FAULT before building the server). Points armed
  // later — e.g. mid-test — are injected but not scraped.
  for (const std::string& point : fault::armed_points()) {
    reg.counter_fn(
        "lrsizer_fault_injected_total",
        "Faults injected by the deterministic fault-injection framework "
        "(src/fault), by point.",
        {{"point", point}},
        [point] { return static_cast<double>(fault::injected_count(point)); },
        this);
  }
  reg.counter_fn(
      "lrsizer_pool_steals_total",
      "Tasks a pool worker stole from a sibling's deque.", {},
      [this] { return static_cast<double>(pool_.steal_count()); }, this);
  reg.counter_fn(
      "lrsizer_kernel_rounds_total",
      "KernelTeam chunk rounds dispatched to helper threads (process-wide).",
      {}, [] { return static_cast<double>(runtime::kernel_rounds_total()); },
      this);
}

Server::ClientId Server::add_client(Sink sink) {
  auto client = std::make_shared<Client>();
  client->sink = std::move(sink);
  const std::lock_guard<std::mutex> lock(clients_mutex_);
  const ClientId id = next_client_++;
  clients_.emplace(id, std::move(client));
  return id;
}

void Server::remove_client(ClientId client) {
  std::shared_ptr<Client> victim;
  {
    const std::lock_guard<std::mutex> lock(clients_mutex_);
    const auto it = clients_.find(client);
    if (it == clients_.end()) return;
    victim = std::move(it->second);
    clients_.erase(it);
  }
  {
    // Clear the sink under its mutex: any emit already holding a reference
    // finds no sink and drops the line; once we hold the mutex here, no
    // emit is mid-write, so the sink is never called after this returns.
    const std::lock_guard<std::mutex> lock(victim->mutex);
    victim->sink = nullptr;
  }
  // Cancel the client's in-flight jobs — nobody is listening for their
  // results. Deduped twins from other clients are unaffected: a follower
  // cancellation only detaches that follower, and an owner abandoning
  // makes its followers re-run (ResultCache contract).
  std::vector<std::shared_ptr<Pending>> orphans;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [scoped_id, pending] : active_) {
      if (pending->client == client) orphans.push_back(pending);
    }
  }
  for (const auto& pending : orphans) pending->stop.request_stop();
}

std::size_t Server::active_clients() const {
  const std::lock_guard<std::mutex> lock(clients_mutex_);
  return clients_.size();
}

void Server::emit(ClientId client, const Json& response) {
  std::shared_ptr<Client> target;
  {
    const std::lock_guard<std::mutex> lock(clients_mutex_);
    const auto it = clients_.find(client);
    if (it == clients_.end()) return;  // client gone; drop the line
    target = it->second;
  }
  const std::string line = response.dump();
  const std::lock_guard<std::mutex> lock(target->mutex);
  if (target->sink) target->sink(line);
}

void Server::hello(ClientId client) {
  emit(client, hello_json(options_.version, pool_.num_workers(),
                          cache_->disk_backed() ? "disk" : "memory"));
}

void Server::hello() { hello(default_client_); }

Server::Stats Server::stats() const {
  Stats s;
  s.accepted = accepted_total_->value();
  s.completed = results_total_->value();
  s.cache_hits = cache_hits_total_->value();
  s.cancelled = cancelled_total_->value();
  s.timeouts = timeouts_total_->value();
  s.errors = errors_total_->value();
  s.shed = shed_total_->value();
  return s;
}

StatsSnapshot Server::stats_snapshot() const {
  StatsSnapshot s;
  s.version = options_.version;
  s.state = draining() ? "draining" : "serving";
  s.start_time_unix_s = start_unix_s_;
  s.uptime_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             start_steady_)
                   .count();
  // Job counters come from the registry instruments — the same storage a
  // /metrics scrape renders, so the two surfaces cannot disagree.
  s.accepted = accepted_total_->value();
  s.completed = results_total_->value();
  s.cache_hits = cache_hits_total_->value();
  s.cancelled = cancelled_total_->value();
  s.timeouts = timeouts_total_->value();
  s.errors = errors_total_->value();
  s.shed = shed_total_->value();
  s.eco_jobs = eco_jobs_total_->value();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    s.queue_depth = in_flight_;
  }
  // Latency comes from the obs histogram — the same instrument a /metrics
  // scrape renders, so the two estimates can never diverge.
  s.latency_count = latency_seconds_->count();
  s.latency_p50_s = histogram_percentile(*latency_seconds_, 50.0);
  s.latency_p99_s = histogram_percentile(*latency_seconds_, 99.0);
  s.active_clients = active_clients();
  const runtime::CacheStats cache = cache_->stats();
  s.cache_entries = cache.entries;
  s.cache_bytes = cache.bytes;
  s.cache_lookup_hits = cache.hits;
  s.cache_lookup_misses = cache.misses;
  s.cache_warm_hits = cache.warm_hits;
  s.cache_eco_hits = cache.eco_hits;
  s.cache_evictions = cache.evictions;
  s.cache_corrupt = cache.corrupt;
  s.cache_disk = cache_->disk_backed();
  return s;
}

void Server::finish(const std::shared_ptr<Pending>& pending) {
  const auto now = std::chrono::steady_clock::now();
  const double seconds =
      std::chrono::duration<double>(now - pending->accepted_at).count();
  latency_seconds_->observe(seconds);
  const std::lock_guard<std::mutex> lock(mutex_);
  active_.erase(pending->scoped_id);
  --in_flight_;
  queue_cost_ -= pending->cost;
  const auto it = client_pending_.find(pending->client);
  if (it != client_pending_.end() && --it->second <= 0) {
    client_pending_.erase(it);
  }
  if (in_flight_ == 0) idle_cv_.notify_all();
}

void Server::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void Server::begin_drain() {
  draining_.store(true, std::memory_order_release);
}

bool Server::idle() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_ == 0;
}

int Server::serve_stream(std::istream& in) {
  hello();
  std::string line;
  while (!options_.stop.stop_requested() && !draining() &&
         std::getline(in, line)) {
    if (!handle_line(line)) break;
  }
  drain();
  return 0;
}

bool Server::handle_line(const std::string& line) {
  return handle_line(default_client_, line);
}

void Server::reject(ClientId client, const std::string& message) {
  emit(client, error_json("", "oversized", message));
  errors_total_->inc();
}

bool Server::handle_line(ClientId client, const std::string& line) {
  if (line.find_first_not_of(" \t\r\n") == std::string::npos) return true;
  Request request;
  // `id` echoes back on rejection whenever the line parsed far enough to
  // have one, so a client with several requests in flight knows which
  // request was rejected.
  std::string id;
  if (const api::Status st =
          parse_request(line, options_.base_options, &request, &id);
      !st.ok()) {
    emit(client, error_json(id, "parse", st.message()));
    errors_total_->inc();
    return true;
  }
  switch (request.kind) {
    case Request::Kind::kShutdown:
      return false;
    case Request::Kind::kCancel:
      handle_cancel(client, request.cancel_id);
      return true;
    case Request::Kind::kStats:
      emit(client, stats_json(request.stats_id, stats_snapshot()));
      return true;
    case Request::Kind::kSize:
      handle_size(client, std::move(request.size));
      return true;
  }
  return true;
}

void Server::handle_cancel(ClientId client, const std::string& id) {
  // Scoped lookup: a cancel only ever reaches the canceller's own jobs.
  const std::string scoped_id = std::to_string(client) + ':' + id;
  std::shared_ptr<Pending> pending;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = active_.find(scoped_id);
    if (it != active_.end()) pending = it->second;
  }
  if (!pending) {
    emit(client, error_json(id, "not_found", "cancel: no active job with this id"));
    errors_total_->inc();
    return;
  }
  // Cooperative: a running session stops at its next OGWS iteration; a
  // deduped follower answers `cancelled` when its shared run completes.
  pending->stop.request_stop();
}

void Server::handle_size(ClientId client, SizeRequest request) {
  auto pending = std::make_shared<Pending>();
  pending->client = client;
  pending->request = std::move(request);
  pending->accepted_at = std::chrono::steady_clock::now();
  // Estimated cost for the admission budget: the logic node count (the
  // paper's flow is near-linear in it — Figure 10) — known before any
  // elaboration runs.
  pending->cost = pending->request.job.netlist.num_gates_logic();
  const std::string id = pending->request.id;
  pending->scoped_id = std::to_string(client) + ':' + id;

  enum class Admit {
    kOk,
    kDraining,
    kDuplicateId,
    kBackpressure,
    kClientCap,
    kQueueCost,
  };
  Admit admit = Admit::kOk;
  std::size_t depth = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    depth = in_flight_;
    const auto per_client = client_pending_.find(client);
    if (draining()) {
      admit = Admit::kDraining;
    } else if (active_.count(pending->scoped_id) != 0) {
      admit = Admit::kDuplicateId;
    } else if (options_.max_pending > 0 &&
               in_flight_ >= static_cast<std::size_t>(options_.max_pending)) {
      admit = Admit::kBackpressure;
    } else if (options_.max_pending_per_client > 0 &&
               per_client != client_pending_.end() &&
               per_client->second >= options_.max_pending_per_client) {
      admit = Admit::kClientCap;
    } else if (options_.max_queue_cost > 0 && in_flight_ > 0 &&
               queue_cost_ + pending->cost > options_.max_queue_cost) {
      // `in_flight_ > 0`: an empty queue always admits, so one over-budget
      // job runs alone instead of being unservable forever.
      admit = Admit::kQueueCost;
    } else {
      active_[pending->scoped_id] = pending;
      ++in_flight_;
      queue_cost_ += pending->cost;
      ++client_pending_[client];
    }
  }
  switch (admit) {
    case Admit::kOk:
      break;
    case Admit::kDraining:
      emit(client, error_json(id, "shutdown",
                              "server is draining and accepts no new jobs"));
      errors_total_->inc();
      return;
    case Admit::kDuplicateId:
      emit(client, error_json(id, "duplicate_id",
                              "a job with this id is already active"));
      errors_total_->inc();
      return;
    case Admit::kBackpressure:
      emit(client,
           error_json(id, "overloaded",
                      "backpressure: " + std::to_string(options_.max_pending) +
                          " jobs already pending — retry later",
                      retry_after_ms(depth)));
      errors_total_->inc();
      shed_total_->inc();
      return;
    case Admit::kClientCap:
      emit(client,
           error_json(id, "overloaded",
                      "fairness: this client already has " +
                          std::to_string(options_.max_pending_per_client) +
                          " jobs pending — retry later",
                      retry_after_ms(depth)));
      errors_total_->inc();
      shed_total_->inc();
      return;
    case Admit::kQueueCost:
      emit(client,
           error_json(id, "overloaded",
                      "queue cost budget exhausted (" +
                          std::to_string(options_.max_queue_cost) +
                          " nodes) — retry later",
                      retry_after_ms(depth)));
      errors_total_->inc();
      shed_total_->inc();
      return;
  }
  accepted_total_->inc();
  // Effective deadline: the request's own wins (0 = explicitly none),
  // otherwise the server default. Armed from admission, so queue wait
  // counts against it.
  std::int64_t deadline_ms = pending->request.deadline_ms;
  if (deadline_ms < 0) deadline_ms = options_.default_deadline_ms;
  if (deadline_ms > 0) {
    pending->has_deadline = true;
    pending->deadline =
        pending->accepted_at + std::chrono::milliseconds(deadline_ms);
    arm_deadline(pending);
  }
  // Jobs with client-supplied warm sizes bypass the cache: their outcome
  // depends on the seed sizes, not just the key.
  pending->cacheable = pending->request.job.warm_sizes.empty();
  if (pending->cacheable) {
    pending->key = runtime::cache_key(pending->request.job.netlist,
                                      pending->request.job.options);
  }
  emit(client, accepted_json(id, pending->cacheable ? pending->key.key : ""));
  schedule(std::move(pending));
}

std::int64_t Server::retry_after_ms(std::size_t depth) const {
  // p50 job latency × how many queue "turns" are ahead of a retry. With no
  // latency history yet, suggest a modest fixed pause.
  const double p50_s = histogram_percentile(*latency_seconds_, 50.0);
  if (p50_s <= 0.0) return 100;
  const double workers = static_cast<double>(pool_.num_workers());
  const double turns =
      std::max(1.0, static_cast<double>(depth) / std::max(1.0, workers));
  return static_cast<std::int64_t>(
      std::clamp(p50_s * 1e3 * turns, 50.0, 10000.0));
}

void Server::arm_deadline(const std::shared_ptr<Pending>& pending) {
  {
    const std::lock_guard<std::mutex> lock(watchdog_mutex_);
    deadlines_.push(DeadlineEntry{pending->deadline, pending});
    if (!watchdog_.joinable()) {
      watchdog_ = std::thread([this] { watchdog_loop(); });
    }
  }
  watchdog_cv_.notify_one();
}

void Server::watchdog_loop() {
  std::unique_lock<std::mutex> lock(watchdog_mutex_);
  while (!watchdog_exit_) {
    if (deadlines_.empty()) {
      watchdog_cv_.wait(
          lock, [this] { return watchdog_exit_ || !deadlines_.empty(); });
      continue;
    }
    const auto next = deadlines_.top().when;
    // Wake early when an earlier deadline arrives; re-evaluate either way.
    watchdog_cv_.wait_until(lock, next, [this, next] {
      return watchdog_exit_ ||
             (!deadlines_.empty() && deadlines_.top().when < next);
    });
    if (watchdog_exit_) break;
    const auto now = std::chrono::steady_clock::now();
    while (!deadlines_.empty() && deadlines_.top().when <= now) {
      const std::shared_ptr<Pending> job = deadlines_.top().job.lock();
      deadlines_.pop();
      if (!job) continue;  // already finished; evaporate
      // timed_out first, then stop: the terminal path reads timed_out only
      // after observing the stop, so the order makes the flag reliable.
      job->timed_out.store(true, std::memory_order_release);
      lock.unlock();
      job->stop.request_stop();
      lock.lock();
    }
  }
}

void Server::schedule(std::shared_ptr<Pending> pending) {
  if (pending->cacheable) {
    std::shared_ptr<const CachedEntry> hit;
    // Fired exactly once by publish() (entry) or abandon() (nullptr) when
    // this job attaches as a follower of an identical in-flight run.
    auto on_done = [this, pending](std::shared_ptr<const CachedEntry> entry) {
      if (pending->stop.get_token().stop_requested()) {
        if (pending->timed_out.load(std::memory_order_acquire)) {
          // A deduped follower has no partial of its own to answer with.
          emit(pending->client,
               error_json(pending->request.id, "deadline",
                          "deadline exceeded while waiting on a deduped "
                          "identical job"));
          errors_total_->inc();
          timeouts_total_->inc();
        } else {
          emit(pending->client, cancelled_json(pending->request.id, nullptr));
          cancelled_total_->inc();
        }
        finish(pending);
        return;
      }
      if (entry) {
        emit(pending->client,
             result_json(pending->request.id, true, entry->job,
                         pending->request.want_sizes ? &entry->sizes : nullptr));
        results_total_->inc();
        cache_hits_total_->inc();
        finish(pending);
      } else {
        // Owner failed or was cancelled — run this job on its own. It
        // re-acquires: it may become the new owner or follow another twin.
        schedule(pending);
      }
    };
    switch (cache_->acquire(pending->key, &hit, on_done)) {
      case ResultCache::Acquire::kHit:
        emit(pending->client,
             result_json(pending->request.id, true, hit->job,
                         pending->request.want_sizes ? &hit->sizes : nullptr));
        results_total_->inc();
        cache_hits_total_->inc();
        finish(pending);
        return;
      case ResultCache::Acquire::kFollower:
        return;
      case ResultCache::Acquire::kOwner: {
        runtime::BatchJob& job = pending->request.job;
        // ECO seeding: a named base wins; otherwise (with --eco) probe for
        // the cached entry sharing the most output cones. A named base that
        // is gone, or a base with nothing reusable, just runs cold.
        if (pending->eco_base.empty()) {
          std::shared_ptr<const CachedEntry> base;
          std::string base_key = pending->request.eco_base;
          if (!base_key.empty()) {
            base = cache_->lookup_eco_base(base_key);
          } else if (options_.eco) {
            base = cache_->lookup_eco(netlist::output_cone_hashes(job.netlist),
                                      pending->key.key, &base_key);
          }
          if (base && !base->eco.empty()) {
            eco::EcoSeed seed =
                eco::seed_from_index(job.netlist, job.options, base->eco);
            if (!seed.empty()) {
              pending->eco_base = base_key;
              pending->eco_reused_nodes = seed.reused_nodes;
              pending->eco_dirty_gates = seed.dirty_gates;
              job.warm_sizes = std::move(seed.sizes);
              job.eco_warm = std::move(seed.multipliers);
              eco_jobs_total_->inc();
              eco_reused_nodes_total_->inc(
                  static_cast<std::uint64_t>(seed.reused_nodes));
              eco_dirty_gates_total_->inc(
                  static_cast<std::uint64_t>(seed.dirty_gates));
            }
          }
        }
        if (pending->eco_base.empty() && options_.cache_warm &&
            job.warm_sizes.empty()) {
          if (const auto warm = cache_->lookup_warm(pending->key)) {
            job.warm_sizes = warm->sizes;
          }
        }
        break;
      }
    }
  }
  pool_.submit([this, pending = std::move(pending)] { execute(pending); });
}

void Server::execute(const std::shared_ptr<Pending>& pending) {
  // Server-wide shutdown cancels this job too.
  std::stop_callback link(options_.stop,
                          [&stop = pending->stop] { stop.request_stop(); });
  runtime::JobControls controls;
  controls.stop = pending->stop.get_token();
  // Per-job trace opt-in: a private TraceSession for this run, serialized
  // into the result response. Only the cold run traces — the cached report a
  // hit or follower answers with has no trace by construction.
  std::unique_ptr<obs::TraceSession> trace;
  if (pending->request.trace) {
    trace = std::make_unique<obs::TraceSession>();
    controls.trace = trace.get();
  }
  const int every = pending->request.progress_every;
  if (every > 0) {
    controls.observer = [this, pending, every](const std::string&,
                                               const core::OgwsIterate& it) {
      if (it.k % every == 0) {
        emit(pending->client, progress_json(pending->request.id, it));
      }
    };
  }

  runtime::JobOutcome outcome =
      run_job(std::move(pending->request.job), controls);

  if (outcome.ok && !outcome.cancelled) {
    CachedEntry entry;
    entry.job = runtime::job_json(outcome);
    entry.sizes = runtime::sparse_sizes(*outcome.flow);
    // The "eco" block lives inside the job object (not the result wrapper)
    // so a repeated identical submission — an exact cache hit served from
    // entry.job verbatim — stays byte-identical to this first response.
    if (!pending->eco_base.empty()) {
      Json eco = Json::object();
      eco.set("base_hash", pending->eco_base);
      eco.set("dirty_nodes",
              static_cast<std::int64_t>(pending->eco_dirty_gates));
      eco.set("reused_nodes", pending->eco_reused_nodes);
      entry.job.set("eco", eco);
    }
    // Snapshot the solution per net so this entry can serve as a future ECO
    // base (named via its key, or auto-detected by output-cone overlap).
    if (pending->cacheable) {
      entry.eco = eco::build_eco_index(outcome.netlist, *outcome.flow);
    }
    std::optional<Json> trace_doc;
    if (trace) trace_doc = Json::parse(trace->dump_json());
    emit(pending->client,
         result_json(pending->request.id, false, entry.job,
                     pending->request.want_sizes ? &entry.sizes : nullptr,
                     trace_doc ? &*trace_doc : nullptr));
    results_total_->inc();
    if (pending->cacheable) cache_->publish(pending->key, std::move(entry));
  } else if (outcome.cancelled) {
    if (pending->cacheable) cache_->abandon(pending->key);
    if (pending->timed_out.load(std::memory_order_acquire)) {
      timeouts_total_->inc();
      if (outcome.ok) {
        // The deadline fired mid-OGWS: the best partial result (with its
        // KKT state in the job object) IS the answer — a result marked
        // "timeout": true, never cached (it is not the converged answer
        // for this key).
        const Json job = runtime::job_json(outcome);
        std::vector<std::pair<std::int32_t, double>> sizes;
        if (pending->request.want_sizes) {
          sizes = runtime::sparse_sizes(*outcome.flow);
        }
        emit(pending->client,
             result_json(pending->request.id, false, job,
                         pending->request.want_sizes ? &sizes : nullptr,
                         nullptr, /*timeout=*/true));
        results_total_->inc();
      } else {
        // Deadline fired before the sizing stage produced anything usable.
        emit(pending->client,
             error_json(pending->request.id, "deadline",
                        "deadline exceeded before a partial result existed"));
        errors_total_->inc();
      }
    } else {
      std::optional<Json> partial;
      if (outcome.ok) partial = runtime::job_json(outcome);
      emit(pending->client,
           cancelled_json(pending->request.id, partial ? &*partial : nullptr));
      cancelled_total_->inc();
    }
  } else {
    if (pending->cacheable) cache_->abandon(pending->key);
    emit(pending->client,
         error_json(pending->request.id, "failed", outcome.error));
    errors_total_->inc();
  }
  finish(pending);
}

}  // namespace lrsizer::serve
