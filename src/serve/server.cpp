#include "serve/server.hpp"

#include <optional>
#include <utility>

#include "util/logging.hpp"

namespace lrsizer::serve {

using runtime::CachedEntry;
using runtime::Json;
using runtime::ResultCache;

Server::Server(ServerOptions options, Sink sink)
    : options_(std::move(options)),
      sink_(std::move(sink)),
      pool_(options_.jobs >= 1 ? options_.jobs : 1) {
  if (options_.cache) {
    cache_ = options_.cache;
  } else {
    owned_cache_ = std::make_unique<ResultCache>();
    cache_ = owned_cache_.get();
  }
}

Server::~Server() { drain(); }

void Server::emit(const Json& response) {
  const std::string line = response.dump();
  const std::lock_guard<std::mutex> lock(sink_mutex_);
  sink_(line);
}

void Server::hello() {
  emit(hello_json(options_.version, pool_.num_workers(),
                  cache_->disk_backed() ? "disk" : "memory"));
}

Server::Stats Server::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void Server::finish(const std::shared_ptr<Pending>& pending) {
  const std::lock_guard<std::mutex> lock(mutex_);
  active_.erase(pending->request.id);
  --in_flight_;
  if (in_flight_ == 0) idle_cv_.notify_all();
}

void Server::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

int Server::serve_stream(std::istream& in) {
  hello();
  std::string line;
  while (!options_.stop.stop_requested() && std::getline(in, line)) {
    if (!handle_line(line)) break;
  }
  drain();
  return 0;
}

bool Server::handle_line(const std::string& line) {
  if (line.find_first_not_of(" \t\r\n") == std::string::npos) return true;
  Request request;
  // `id` echoes back on rejection whenever the line parsed far enough to
  // have one, so a client with several requests in flight knows which
  // request was rejected.
  std::string id;
  if (const api::Status st =
          parse_request(line, options_.base_options, &request, &id);
      !st.ok()) {
    emit(error_json(id, st.message()));
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.errors;
    return true;
  }
  switch (request.kind) {
    case Request::Kind::kShutdown:
      return false;
    case Request::Kind::kCancel:
      handle_cancel(request.cancel_id);
      return true;
    case Request::Kind::kSize:
      handle_size(std::move(request.size));
      return true;
  }
  return true;
}

void Server::handle_cancel(const std::string& id) {
  std::shared_ptr<Pending> pending;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = active_.find(id);
    if (it != active_.end()) pending = it->second;
  }
  if (!pending) {
    emit(error_json(id, "cancel: no active job with this id"));
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.errors;
    return;
  }
  // Cooperative: a running session stops at its next OGWS iteration; a
  // deduped follower answers `cancelled` when its shared run completes.
  pending->stop.request_stop();
}

void Server::handle_size(SizeRequest request) {
  auto pending = std::make_shared<Pending>();
  pending->request = std::move(request);
  const std::string id = pending->request.id;

  enum class Admit { kOk, kDuplicateId, kBackpressure };
  Admit admit = Admit::kOk;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (active_.count(id) != 0) {
      admit = Admit::kDuplicateId;
      ++stats_.errors;
    } else if (options_.max_pending > 0 &&
               in_flight_ >= static_cast<std::size_t>(options_.max_pending)) {
      admit = Admit::kBackpressure;
      ++stats_.errors;
    } else {
      active_[id] = pending;
      ++in_flight_;
      ++stats_.accepted;
    }
  }
  if (admit == Admit::kDuplicateId) {
    emit(error_json(id, "a job with this id is already active"));
    return;
  }
  if (admit == Admit::kBackpressure) {
    emit(error_json(id, "backpressure: " + std::to_string(options_.max_pending) +
                            " jobs already pending — retry later"));
    return;
  }
  // Jobs with client-supplied warm sizes bypass the cache: their outcome
  // depends on the seed sizes, not just the key.
  pending->cacheable = pending->request.job.warm_sizes.empty();
  if (pending->cacheable) {
    pending->key = runtime::cache_key(pending->request.job.netlist,
                                      pending->request.job.options);
  }
  emit(accepted_json(id, pending->cacheable ? pending->key.key : ""));
  schedule(std::move(pending));
}

void Server::schedule(std::shared_ptr<Pending> pending) {
  if (pending->cacheable) {
    std::shared_ptr<const CachedEntry> hit;
    // Fired exactly once by publish() (entry) or abandon() (nullptr) when
    // this job attaches as a follower of an identical in-flight run.
    auto on_done = [this, pending](std::shared_ptr<const CachedEntry> entry) {
      if (pending->stop.get_token().stop_requested()) {
        emit(cancelled_json(pending->request.id, nullptr));
        {
          const std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.cancelled;
        }
        finish(pending);
        return;
      }
      if (entry) {
        emit(result_json(pending->request.id, true, entry->job,
                         pending->request.want_sizes ? &entry->sizes : nullptr));
        {
          const std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.completed;
          ++stats_.cache_hits;
        }
        finish(pending);
      } else {
        // Owner failed or was cancelled — run this job on its own. It
        // re-acquires: it may become the new owner or follow another twin.
        schedule(pending);
      }
    };
    switch (cache_->acquire(pending->key, &hit, on_done)) {
      case ResultCache::Acquire::kHit:
        emit(result_json(pending->request.id, true, hit->job,
                         pending->request.want_sizes ? &hit->sizes : nullptr));
        {
          const std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.completed;
          ++stats_.cache_hits;
        }
        finish(pending);
        return;
      case ResultCache::Acquire::kFollower:
        return;
      case ResultCache::Acquire::kOwner:
        if (options_.cache_warm && pending->request.job.warm_sizes.empty()) {
          if (const auto warm = cache_->lookup_warm(pending->key)) {
            pending->request.job.warm_sizes = warm->sizes;
          }
        }
        break;
    }
  }
  pool_.submit([this, pending = std::move(pending)] { execute(pending); });
}

void Server::execute(const std::shared_ptr<Pending>& pending) {
  // Server-wide shutdown cancels this job too.
  std::stop_callback link(options_.stop,
                          [&stop = pending->stop] { stop.request_stop(); });
  runtime::JobControls controls;
  controls.stop = pending->stop.get_token();
  const int every = pending->request.progress_every;
  if (every > 0) {
    controls.observer = [this, pending, every](const std::string&,
                                               const core::OgwsIterate& it) {
      if (it.k % every == 0) emit(progress_json(pending->request.id, it));
    };
  }

  runtime::JobOutcome outcome =
      run_job(std::move(pending->request.job), controls);

  if (outcome.ok && !outcome.cancelled) {
    CachedEntry entry{runtime::job_json(outcome),
                      runtime::sparse_sizes(*outcome.flow)};
    emit(result_json(pending->request.id, false, entry.job,
                     pending->request.want_sizes ? &entry.sizes : nullptr));
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.completed;
    }
    if (pending->cacheable) cache_->publish(pending->key, std::move(entry));
  } else if (outcome.cancelled) {
    if (pending->cacheable) cache_->abandon(pending->key);
    std::optional<Json> partial;
    if (outcome.ok) partial = runtime::job_json(outcome);
    emit(cancelled_json(pending->request.id, partial ? &*partial : nullptr));
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.cancelled;
  } else {
    if (pending->cacheable) cache_->abandon(pending->key);
    emit(error_json(pending->request.id, outcome.error));
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.errors;
  }
  finish(pending);
}

}  // namespace lrsizer::serve
