#include "serve/server.hpp"

#include <optional>
#include <utility>
#include <vector>

#include "util/logging.hpp"

namespace lrsizer::serve {

using runtime::CachedEntry;
using runtime::Json;
using runtime::ResultCache;

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      pool_(options_.jobs >= 1 ? options_.jobs : 1) {
  if (options_.cache) {
    cache_ = options_.cache;
  } else {
    owned_cache_ = std::make_unique<ResultCache>("", options_.cache_limits);
    cache_ = owned_cache_.get();
  }
}

Server::Server(ServerOptions options, Sink sink)
    : Server(std::move(options)) {
  default_client_ = add_client(std::move(sink));
}

Server::~Server() { drain(); }

Server::ClientId Server::add_client(Sink sink) {
  auto client = std::make_shared<Client>();
  client->sink = std::move(sink);
  const std::lock_guard<std::mutex> lock(clients_mutex_);
  const ClientId id = next_client_++;
  clients_.emplace(id, std::move(client));
  return id;
}

void Server::remove_client(ClientId client) {
  std::shared_ptr<Client> victim;
  {
    const std::lock_guard<std::mutex> lock(clients_mutex_);
    const auto it = clients_.find(client);
    if (it == clients_.end()) return;
    victim = std::move(it->second);
    clients_.erase(it);
  }
  {
    // Clear the sink under its mutex: any emit already holding a reference
    // finds no sink and drops the line; once we hold the mutex here, no
    // emit is mid-write, so the sink is never called after this returns.
    const std::lock_guard<std::mutex> lock(victim->mutex);
    victim->sink = nullptr;
  }
  // Cancel the client's in-flight jobs — nobody is listening for their
  // results. Deduped twins from other clients are unaffected: a follower
  // cancellation only detaches that follower, and an owner abandoning
  // makes its followers re-run (ResultCache contract).
  std::vector<std::shared_ptr<Pending>> orphans;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [scoped_id, pending] : active_) {
      if (pending->client == client) orphans.push_back(pending);
    }
  }
  for (const auto& pending : orphans) pending->stop.request_stop();
}

std::size_t Server::active_clients() const {
  const std::lock_guard<std::mutex> lock(clients_mutex_);
  return clients_.size();
}

void Server::emit(ClientId client, const Json& response) {
  std::shared_ptr<Client> target;
  {
    const std::lock_guard<std::mutex> lock(clients_mutex_);
    const auto it = clients_.find(client);
    if (it == clients_.end()) return;  // client gone; drop the line
    target = it->second;
  }
  const std::string line = response.dump();
  const std::lock_guard<std::mutex> lock(target->mutex);
  if (target->sink) target->sink(line);
}

void Server::hello(ClientId client) {
  emit(client, hello_json(options_.version, pool_.num_workers(),
                          cache_->disk_backed() ? "disk" : "memory"));
}

void Server::hello() { hello(default_client_); }

Server::Stats Server::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

StatsSnapshot Server::stats_snapshot() const {
  StatsSnapshot s;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    s.accepted = stats_.accepted;
    s.completed = stats_.completed;
    s.cache_hits = stats_.cache_hits;
    s.cancelled = stats_.cancelled;
    s.errors = stats_.errors;
    s.queue_depth = in_flight_;
    s.latency_count = latency_.count();
    s.latency_p50_s = latency_.percentile(50.0);
    s.latency_p99_s = latency_.percentile(99.0);
  }
  s.active_clients = active_clients();
  const runtime::CacheStats cache = cache_->stats();
  s.cache_entries = cache.entries;
  s.cache_bytes = cache.bytes;
  s.cache_lookup_hits = cache.hits;
  s.cache_lookup_misses = cache.misses;
  s.cache_evictions = cache.evictions;
  s.cache_disk = cache_->disk_backed();
  return s;
}

void Server::finish(const std::shared_ptr<Pending>& pending) {
  const auto now = std::chrono::steady_clock::now();
  const std::lock_guard<std::mutex> lock(mutex_);
  latency_.record(std::chrono::duration<double>(now - pending->accepted_at)
                      .count());
  active_.erase(pending->scoped_id);
  --in_flight_;
  if (in_flight_ == 0) idle_cv_.notify_all();
}

void Server::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

int Server::serve_stream(std::istream& in) {
  hello();
  std::string line;
  while (!options_.stop.stop_requested() && std::getline(in, line)) {
    if (!handle_line(line)) break;
  }
  drain();
  return 0;
}

bool Server::handle_line(const std::string& line) {
  return handle_line(default_client_, line);
}

void Server::reject(ClientId client, const std::string& message) {
  emit(client, error_json("", message));
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.errors;
}

bool Server::handle_line(ClientId client, const std::string& line) {
  if (line.find_first_not_of(" \t\r\n") == std::string::npos) return true;
  Request request;
  // `id` echoes back on rejection whenever the line parsed far enough to
  // have one, so a client with several requests in flight knows which
  // request was rejected.
  std::string id;
  if (const api::Status st =
          parse_request(line, options_.base_options, &request, &id);
      !st.ok()) {
    emit(client, error_json(id, st.message()));
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.errors;
    return true;
  }
  switch (request.kind) {
    case Request::Kind::kShutdown:
      return false;
    case Request::Kind::kCancel:
      handle_cancel(client, request.cancel_id);
      return true;
    case Request::Kind::kStats:
      emit(client, stats_json(request.stats_id, stats_snapshot()));
      return true;
    case Request::Kind::kSize:
      handle_size(client, std::move(request.size));
      return true;
  }
  return true;
}

void Server::handle_cancel(ClientId client, const std::string& id) {
  // Scoped lookup: a cancel only ever reaches the canceller's own jobs.
  const std::string scoped_id = std::to_string(client) + ':' + id;
  std::shared_ptr<Pending> pending;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = active_.find(scoped_id);
    if (it != active_.end()) pending = it->second;
  }
  if (!pending) {
    emit(client, error_json(id, "cancel: no active job with this id"));
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.errors;
    return;
  }
  // Cooperative: a running session stops at its next OGWS iteration; a
  // deduped follower answers `cancelled` when its shared run completes.
  pending->stop.request_stop();
}

void Server::handle_size(ClientId client, SizeRequest request) {
  auto pending = std::make_shared<Pending>();
  pending->client = client;
  pending->request = std::move(request);
  pending->accepted_at = std::chrono::steady_clock::now();
  const std::string id = pending->request.id;
  pending->scoped_id = std::to_string(client) + ':' + id;

  enum class Admit { kOk, kDuplicateId, kBackpressure };
  Admit admit = Admit::kOk;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (active_.count(pending->scoped_id) != 0) {
      admit = Admit::kDuplicateId;
      ++stats_.errors;
    } else if (options_.max_pending > 0 &&
               in_flight_ >= static_cast<std::size_t>(options_.max_pending)) {
      admit = Admit::kBackpressure;
      ++stats_.errors;
    } else {
      active_[pending->scoped_id] = pending;
      ++in_flight_;
      ++stats_.accepted;
    }
  }
  if (admit == Admit::kDuplicateId) {
    emit(client, error_json(id, "a job with this id is already active"));
    return;
  }
  if (admit == Admit::kBackpressure) {
    emit(client,
         error_json(id, "backpressure: " + std::to_string(options_.max_pending) +
                            " jobs already pending — retry later"));
    return;
  }
  // Jobs with client-supplied warm sizes bypass the cache: their outcome
  // depends on the seed sizes, not just the key.
  pending->cacheable = pending->request.job.warm_sizes.empty();
  if (pending->cacheable) {
    pending->key = runtime::cache_key(pending->request.job.netlist,
                                      pending->request.job.options);
  }
  emit(client, accepted_json(id, pending->cacheable ? pending->key.key : ""));
  schedule(std::move(pending));
}

void Server::schedule(std::shared_ptr<Pending> pending) {
  if (pending->cacheable) {
    std::shared_ptr<const CachedEntry> hit;
    // Fired exactly once by publish() (entry) or abandon() (nullptr) when
    // this job attaches as a follower of an identical in-flight run.
    auto on_done = [this, pending](std::shared_ptr<const CachedEntry> entry) {
      if (pending->stop.get_token().stop_requested()) {
        emit(pending->client, cancelled_json(pending->request.id, nullptr));
        {
          const std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.cancelled;
        }
        finish(pending);
        return;
      }
      if (entry) {
        emit(pending->client,
             result_json(pending->request.id, true, entry->job,
                         pending->request.want_sizes ? &entry->sizes : nullptr));
        {
          const std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.completed;
          ++stats_.cache_hits;
        }
        finish(pending);
      } else {
        // Owner failed or was cancelled — run this job on its own. It
        // re-acquires: it may become the new owner or follow another twin.
        schedule(pending);
      }
    };
    switch (cache_->acquire(pending->key, &hit, on_done)) {
      case ResultCache::Acquire::kHit:
        emit(pending->client,
             result_json(pending->request.id, true, hit->job,
                         pending->request.want_sizes ? &hit->sizes : nullptr));
        {
          const std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.completed;
          ++stats_.cache_hits;
        }
        finish(pending);
        return;
      case ResultCache::Acquire::kFollower:
        return;
      case ResultCache::Acquire::kOwner:
        if (options_.cache_warm && pending->request.job.warm_sizes.empty()) {
          if (const auto warm = cache_->lookup_warm(pending->key)) {
            pending->request.job.warm_sizes = warm->sizes;
          }
        }
        break;
    }
  }
  pool_.submit([this, pending = std::move(pending)] { execute(pending); });
}

void Server::execute(const std::shared_ptr<Pending>& pending) {
  // Server-wide shutdown cancels this job too.
  std::stop_callback link(options_.stop,
                          [&stop = pending->stop] { stop.request_stop(); });
  runtime::JobControls controls;
  controls.stop = pending->stop.get_token();
  const int every = pending->request.progress_every;
  if (every > 0) {
    controls.observer = [this, pending, every](const std::string&,
                                               const core::OgwsIterate& it) {
      if (it.k % every == 0) {
        emit(pending->client, progress_json(pending->request.id, it));
      }
    };
  }

  runtime::JobOutcome outcome =
      run_job(std::move(pending->request.job), controls);

  if (outcome.ok && !outcome.cancelled) {
    CachedEntry entry{runtime::job_json(outcome),
                      runtime::sparse_sizes(*outcome.flow)};
    emit(pending->client,
         result_json(pending->request.id, false, entry.job,
                     pending->request.want_sizes ? &entry.sizes : nullptr));
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.completed;
    }
    if (pending->cacheable) cache_->publish(pending->key, std::move(entry));
  } else if (outcome.cancelled) {
    if (pending->cacheable) cache_->abandon(pending->key);
    std::optional<Json> partial;
    if (outcome.ok) partial = runtime::job_json(outcome);
    emit(pending->client,
         cancelled_json(pending->request.id, partial ? &*partial : nullptr));
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.cancelled;
  } else {
    if (pending->cacheable) cache_->abandon(pending->key);
    emit(pending->client, error_json(pending->request.id, outcome.error));
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.errors;
  }
  finish(pending);
}

}  // namespace lrsizer::serve
