#include "fault/fault.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <mutex>

namespace lrsizer::fault {

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

struct Rule {
  enum class Kind { kAlways, kNth, kEvery, kProb };
  Kind kind = Kind::kAlways;
  std::uint64_t n = 1;       ///< nth / every operand
  double p = 0.0;            ///< probability for kProb
  std::uint64_t rng = 1;     ///< xorshift64 state for kProb
  std::uint64_t hits = 0;
  std::uint64_t injected = 0;
};

std::mutex& rules_mutex() {
  static std::mutex mutex;
  return mutex;
}

// Ordered so armed_points()/injected_counts() list deterministically.
std::map<std::string, Rule>& rules() {
  static std::map<std::string, Rule> map;
  return map;
}

/// xorshift64: deterministic, seedable, good enough for fault dice.
double next_uniform(std::uint64_t& state) {
  std::uint64_t x = state;
  x ^= x << 13U;
  x ^= x >> 7U;
  x ^= x << 17U;
  state = x;
  return static_cast<double>(x >> 11U) * 0x1.0p-53;
}

bool fail_with(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
  return false;
}

bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty()) {
    return false;
  }
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      return false;
    }
    if (value > (UINT64_MAX - static_cast<std::uint64_t>(c - '0')) / 10U) {
      return false;
    }
    value = value * 10U + static_cast<std::uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

bool parse_trigger(const std::string& trigger, Rule* rule, std::string* error) {
  if (trigger == "always") {
    rule->kind = Rule::Kind::kAlways;
    return true;
  }
  if (trigger.rfind("nth=", 0) == 0 || trigger.rfind("every=", 0) == 0) {
    const bool nth = trigger[0] == 'n';
    std::uint64_t n = 0;
    if (!parse_u64(trigger.substr(trigger.find('=') + 1), &n) || n == 0) {
      return fail_with(error, "trigger \"" + trigger +
                                  "\" needs a positive integer operand");
    }
    rule->kind = nth ? Rule::Kind::kNth : Rule::Kind::kEvery;
    rule->n = n;
    return true;
  }
  if (trigger.rfind("p=", 0) == 0) {
    std::string prob = trigger.substr(2);
    std::uint64_t seed = 1;
    if (const std::size_t at = prob.find('@'); at != std::string::npos) {
      if (!parse_u64(prob.substr(at + 1), &seed) || seed == 0) {
        return fail_with(error, "trigger \"" + trigger +
                                    "\" needs a positive integer seed");
      }
      prob.resize(at);
    }
    char* end = nullptr;
    const double p = std::strtod(prob.c_str(), &end);
    if (prob.empty() || end == nullptr || *end != '\0' || p < 0.0 || p > 1.0) {
      return fail_with(error, "trigger \"" + trigger +
                                  "\" needs a probability in [0, 1]");
    }
    rule->kind = Rule::Kind::kProb;
    rule->p = p;
    rule->rng = seed;
    return true;
  }
  return fail_with(error,
                   "unknown trigger \"" + trigger +
                       "\" (expected always, nth=N, every=N, or p=P[@SEED])");
}

}  // namespace

const std::vector<std::string>& known_points() {
  static const std::vector<std::string> points = {
      "cache.read",    // runtime::ResultCache::load_from_disk — torn read
      "cache.rename",  // runtime::ResultCache::persist — torn publish
      "cache.write",   // runtime::ResultCache::persist — ENOSPC mid-write
      "json.parse",    // serve::parse_request — post-parse failure
      "session.alloc",  // api::SizingSession::elaborate — bad_alloc
      "socket.write",  // serve write_all_fd — peer reset / EPIPE
  };
  return points;
}

bool should_fail(const char* point) {
  const std::lock_guard<std::mutex> lock(rules_mutex());
  const auto it = rules().find(point);
  if (it == rules().end()) {
    return false;
  }
  Rule& rule = it->second;
  ++rule.hits;
  bool fire = false;
  switch (rule.kind) {
    case Rule::Kind::kAlways:
      fire = true;
      break;
    case Rule::Kind::kNth:
      fire = rule.hits == rule.n;
      break;
    case Rule::Kind::kEvery:
      fire = rule.hits % rule.n == 0;
      break;
    case Rule::Kind::kProb:
      fire = next_uniform(rule.rng) < rule.p;
      break;
  }
  if (fire) {
    ++rule.injected;
  }
  return fire;
}

bool arm(const std::string& spec, std::string* error) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size()) {
    return fail_with(error, "fault spec \"" + spec +
                                "\" must look like point:trigger");
  }
  const std::string point = spec.substr(0, colon);
  const std::vector<std::string>& known = known_points();
  if (std::find(known.begin(), known.end(), point) == known.end()) {
    std::string names;
    for (const std::string& name : known) {
      names += names.empty() ? name : ", " + name;
    }
    return fail_with(error, "unknown fault point \"" + point +
                                "\" (known: " + names + ")");
  }
  Rule rule;
  if (!parse_trigger(spec.substr(colon + 1), &rule, error)) {
    return false;
  }
#if defined(LRSIZER_NO_FAULT_INJECTION)
  return fail_with(error,
                   "this build was compiled with LRSIZER_NO_FAULT_INJECTION");
#else
  const std::lock_guard<std::mutex> lock(rules_mutex());
  rules()[point] = rule;
  detail::g_armed.store(true, std::memory_order_relaxed);
  return true;
#endif
}

int arm_from_env(std::string* error) {
  const char* env = std::getenv("LRSIZER_FAULT");
  if (env == nullptr || *env == '\0') {
    return 0;
  }
  const std::string specs(env);
  int armed_count = 0;
  std::size_t begin = 0;
  while (begin <= specs.size()) {
    const std::size_t end = std::min(specs.find(',', begin), specs.size());
    const std::string spec = specs.substr(begin, end - begin);
    if (!spec.empty()) {
      if (!arm(spec, error)) {
        return -1;
      }
      ++armed_count;
    }
    begin = end + 1;
  }
  return armed_count;
}

void reset() {
  const std::lock_guard<std::mutex> lock(rules_mutex());
  rules().clear();
  detail::g_armed.store(false, std::memory_order_relaxed);
}

std::vector<std::string> armed_points() {
  const std::lock_guard<std::mutex> lock(rules_mutex());
  std::vector<std::string> points;
  points.reserve(rules().size());
  for (const auto& entry : rules()) {
    points.push_back(entry.first);
  }
  return points;
}

std::uint64_t injected_count(const std::string& point) {
  const std::lock_guard<std::mutex> lock(rules_mutex());
  const auto it = rules().find(point);
  return it == rules().end() ? 0U : it->second.injected;
}

std::vector<std::pair<std::string, std::uint64_t>> injected_counts() {
  const std::lock_guard<std::mutex> lock(rules_mutex());
  std::vector<std::pair<std::string, std::uint64_t>> counts;
  counts.reserve(rules().size());
  for (const auto& [point, rule] : rules()) {
    counts.emplace_back(point, rule.injected);
  }
  return counts;
}

}  // namespace lrsizer::fault
