// Deterministic fault injection (docs/RELIABILITY.md).
//
// Code that touches the outside world guards its failure paths with named
// fault points:
//
//   if (LRSIZER_FAULT_POINT("cache.write")) { /* behave as if ENOSPC */ }
//
// Disarmed (the default, and the only production state) a fault point costs
// one relaxed atomic load and a never-taken branch — nothing is looked up,
// no string is hashed — so hot paths keep their bench-guarded profile and
// results stay bit-identical. Arming happens explicitly, per process, via
// `lrsizer --fault-inject "point:spec"` or the LRSIZER_FAULT environment
// variable (comma-separated specs); tests call arm()/reset() directly.
//
// Trigger grammar (the part after "point:"):
//
//   always        fire on every hit
//   nth=N         fire exactly on the Nth hit (1-based), then never again
//   every=N       fire on hits N, 2N, 3N, ...
//   p=P[@SEED]    fire each hit with probability P in [0,1], from a seeded
//                 xorshift64 stream (default seed 1) — deterministic for a
//                 given seed and hit sequence
//
// Point names are validated against the known-points list below, so a typo
// in a chaos harness fails loudly instead of silently injecting nothing.
//
// Thread safety: every function is safe to call concurrently; should_fail
// serializes per-process on one mutex, which is fine because armed runs are
// test/chaos runs by definition.
//
// Building with -DLRSIZER_NO_FAULT_INJECTION compiles every point to a
// constant false (arm() then fails at runtime).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace lrsizer::fault {

namespace detail {
extern std::atomic<bool> g_armed;
}  // namespace detail

/// True when at least one fault point is armed (one relaxed load).
inline bool armed() {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// Decide whether the named point fires on this hit. Only call when armed()
/// — the LRSIZER_FAULT_POINT macro does this — so the disarmed cost stays a
/// single load. Unarmed points return false (their hits are not counted).
bool should_fail(const char* point);

#if defined(LRSIZER_NO_FAULT_INJECTION)
#define LRSIZER_FAULT_POINT(point) false
#else
#define LRSIZER_FAULT_POINT(point) \
  (::lrsizer::fault::armed() && ::lrsizer::fault::should_fail(point))
#endif

/// Every point name the codebase defines (sorted). arm() rejects names not
/// in this list.
const std::vector<std::string>& known_points();

/// Arm one point from a "point:spec" string (grammar above). Returns false
/// — with the reason in *error, when given — on an unknown point or a
/// malformed trigger; the existing rules are untouched. Re-arming a point
/// replaces its rule and resets its hit/injected counters.
bool arm(const std::string& spec, std::string* error = nullptr);

/// Arm every comma-separated spec in $LRSIZER_FAULT. Returns the number of
/// points armed (0 when the variable is unset or empty), or -1 on the first
/// bad spec (reason in *error; earlier specs stay armed).
int arm_from_env(std::string* error = nullptr);

/// Disarm everything and zero all counters (test isolation).
void reset();

/// Names of the currently armed points (sorted).
std::vector<std::string> armed_points();

/// Faults injected so far at one point (0 for unarmed/unknown points).
/// Monotonic until reset(); the lrsizer_fault_injected_total{point} metric
/// reads this.
std::uint64_t injected_count(const std::string& point);

/// (point, injected) for every armed point, sorted by point.
std::vector<std::pair<std::string, std::uint64_t>> injected_counts();

}  // namespace lrsizer::fault
