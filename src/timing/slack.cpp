#include "timing/slack.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace lrsizer::timing {

void compute_slacks(const netlist::Circuit& circuit, const ArrivalAnalysis& arrivals,
                    double delay_bound_s, SlackAnalysis& out) {
  using netlist::NodeId;
  const auto n = static_cast<std::size_t>(circuit.num_nodes());
  LRSIZER_ASSERT(arrivals.arrival.size() == n);
  LRSIZER_ASSERT(delay_bound_s > 0.0);

  const double inf = std::numeric_limits<double>::infinity();
  out.required.assign(n, inf);
  out.slack.assign(n, inf);

  const NodeId sink = circuit.sink();
  out.required[static_cast<std::size_t>(sink)] = delay_bound_s;

  // Reverse topological sweep: req_j = min over consumers i of
  // (req_i - D_i); consumers include the sink (D = 0 there).
  for (NodeId v = sink - 1; v >= 1; --v) {
    const auto i = static_cast<std::size_t>(v);
    double req = inf;
    for (NodeId consumer : circuit.outputs(v)) {
      const auto c = static_cast<std::size_t>(consumer);
      const double d = consumer == sink ? 0.0 : arrivals.delay[c];
      req = std::min(req, out.required[c] - d);
    }
    out.required[i] = req;
    out.slack[i] = req - arrivals.arrival[i];
  }

  out.worst_slack = inf;
  for (NodeId v = 1; v < sink; ++v) {
    out.worst_slack = std::min(out.worst_slack, out.slack[static_cast<std::size_t>(v)]);
  }
}

std::vector<netlist::NodeId> nodes_by_criticality(const netlist::Circuit& circuit,
                                                  const SlackAnalysis& slacks) {
  std::vector<netlist::NodeId> nodes;
  nodes.reserve(static_cast<std::size_t>(circuit.num_nodes()));
  for (netlist::NodeId v = 1; v < circuit.sink(); ++v) nodes.push_back(v);
  std::stable_sort(nodes.begin(), nodes.end(), [&](netlist::NodeId a, netlist::NodeId b) {
    return slacks.slack[static_cast<std::size_t>(a)] <
           slacks.slack[static_cast<std::size_t>(b)];
  });
  return nodes;
}

}  // namespace lrsizer::timing
