// The four Table 1 quantities: area, power (as total capacitance), coupling
// noise, and critical-path delay, all evaluated at a given size vector x.
// compute_metrics is the single evaluation point every stage shares: bounds
// derivation scales its output, OGWS checks feasibility against it, and the
// benches print it before/after sizing.
#pragma once

#include <vector>

#include "layout/neighbors.hpp"
#include "netlist/circuit.hpp"
#include "timing/loads.hpp"

namespace lrsizer::timing {

struct Metrics {
  double area_um2 = 0.0;   ///< Σ α_i x_i over sized components
  double power_w = 0.0;    ///< V²·f·Σ c_i (ground capacitance, paper §4.1)
  double cap_f = 0.0;      ///< Σ c_i — the normalized power P/(V²f)
  double noise_f = 0.0;    ///< Σ_{i∈W} Σ_{j∈I(i)} ĉ_ij(x_i+x_j) (Table 1 metric)
  double noise_exact_f = 0.0;  ///< Σ of exact Eq. 2 coupling capacitances
  double delay_s = 0.0;    ///< critical-path delay
};

/// Σ α_i x_i alone (the optimization objective).
double total_area(const netlist::Circuit& circuit, const std::vector<double>& x);

/// Σ (ĉ_i x_i + f_i) over components — the power constraint's left side.
double total_cap(const netlist::Circuit& circuit, const std::vector<double>& x);

/// Full metric bundle at sizes `x` (runs a load + arrival pass).
Metrics compute_metrics(const netlist::Circuit& circuit,
                        const layout::CouplingSet& coupling,
                        const std::vector<double>& x, CouplingLoadMode mode);

}  // namespace lrsizer::timing
