// Downstream capacitance passes (paper §2.1 circuit model + §4 coupling).
//
// Stage-local Elmore load model: a gate's input capacitance terminates its
// fanin stage; a wire's π-model puts (ĉx+f)/2 at each end. For every node i
// we compute, in one reverse-topological sweep:
//
//   cap_delay[i]  = C_i   — everything downstream of r_i, including the
//                           wire's own output half ("self-loading") and the
//                           wire's coupling capacitance; drives D_i = r_i·C_i.
//   cap_prime[i]  = C'_i  — C_i with all x_i-proportional terms removed and
//                           the neighbor-size coupling Σ ĉ_ij·x_j removed
//                           (Theorem 5 adds that term explicitly).
//   load_in[i]    = the capacitance component i presents to its parent.
//
// CouplingLoadMode selects whether a wire's coupling capacitance is charged
// only to the victim wire's own delay (kLocalOnly — matches Theorem 5's
// resize rule exactly) or also propagates into upstream loads
// (kPropagateUpstream — physical ground-cap approximation; compared in
// bench_ablation). See docs/ARCHITECTURE.md, decision D4.
#pragma once

#include <vector>

#include "layout/neighbors.hpp"
#include "netlist/circuit.hpp"

namespace lrsizer::timing {

enum class CouplingLoadMode {
  kLocalOnly,
  kPropagateUpstream,
};

struct LoadAnalysis {
  std::vector<double> cap_delay;
  std::vector<double> cap_prime;
  std::vector<double> load_in;

  void resize(std::size_t n) {
    cap_delay.assign(n, 0.0);
    cap_prime.assign(n, 0.0);
    load_in.assign(n, 0.0);
  }
};

/// One reverse-topological sweep; O(|V| + |E| + |pairs|).
void compute_loads(const netlist::Circuit& circuit, const layout::CouplingSet& coupling,
                   const std::vector<double>& x, CouplingLoadMode mode,
                   LoadAnalysis& out);

}  // namespace lrsizer::timing
