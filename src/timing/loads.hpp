// Downstream capacitance passes (paper §2.1 circuit model + §4 coupling).
//
// Stage-local Elmore load model: a gate's input capacitance terminates its
// fanin stage; a wire's π-model puts (ĉx+f)/2 at each end. For every node i
// we compute, in one reverse-topological sweep:
//
//   cap_delay[i]  = C_i   — everything downstream of r_i, including the
//                           wire's own output half ("self-loading") and the
//                           wire's coupling capacitance; drives D_i = r_i·C_i.
//   cap_prime[i]  = C'_i  — C_i with all x_i-proportional terms removed and
//                           the neighbor-size coupling Σ ĉ_ij·x_j removed
//                           (Theorem 5 adds that term explicitly).
//   load_in[i]    = the capacitance component i presents to its parent.
//
// CouplingLoadMode selects whether a wire's coupling capacitance is charged
// only to the victim wire's own delay (kLocalOnly — matches Theorem 5's
// resize rule exactly) or also propagates into upstream loads
// (kPropagateUpstream — physical ground-cap approximation; compared in
// bench_ablation). See docs/ARCHITECTURE.md, decision D4.
#pragma once

#include <vector>

#include "layout/neighbors.hpp"
#include "netlist/circuit.hpp"
#include "util/parallel.hpp"

namespace lrsizer::timing {

enum class CouplingLoadMode {
  kLocalOnly,
  kPropagateUpstream,
};

struct LoadAnalysis {
  std::vector<double> cap_delay;
  std::vector<double> cap_prime;
  std::vector<double> load_in;

  void resize(std::size_t n) {
    // Re-zeroing is skipped when the shape is unchanged: compute_loads
    // overwrites every entry for nodes 1..sink-1 unconditionally, and the
    // source/sink entries stay at the 0 this first-time fill wrote. Dropping
    // the three O(n) refills matters — the OGWS hot loop runs this pass
    // several times per iteration.
    if (cap_delay.size() == n) return;
    cap_delay.assign(n, 0.0);
    cap_prime.assign(n, 0.0);
    load_in.assign(n, 0.0);
  }
};

/// One reverse-topological sweep; O(|V| + |E| + |pairs|). With a parallel
/// `exec`, the sweep runs wavefront-by-wavefront over
/// `circuit.reverse_levels()` — output is bit-identical to the serial pass
/// at any thread count (docs/ARCHITECTURE.md §Parallel kernels).
void compute_loads(const netlist::Circuit& circuit, const layout::CouplingSet& coupling,
                   const std::vector<double>& x, CouplingLoadMode mode,
                   LoadAnalysis& out, util::Executor* exec = nullptr);

/// Recompute node v's three load entries in place. This is the exact
/// per-node body of compute_loads (the full sweep calls it), so selectively
/// re-running it over any superset of the nodes whose inputs (own/neighbor
/// sizes, children's load_in) changed — in descending node order — yields
/// loads bit-identical to a full sweep: same pure function, same inputs.
/// The worklist LRS sweep uses this for incremental load maintenance.
/// `out` must be sized and v's children's load_in entries must be final.
void compute_node_loads(const netlist::Circuit& circuit,
                        const layout::CouplingSet& coupling,
                        const std::vector<double>& x, CouplingLoadMode mode,
                        LoadAnalysis& out, netlist::NodeId v);

}  // namespace lrsizer::timing
