// Top-K longest paths through the circuit DAG.
//
// Best-first search over partial paths with a perfect admissible heuristic:
// a partial path ending at node v is ranked by
//   (delay accumulated so far) + (longest completion from v to the sink),
// where the completion bound comes from one reverse-topological pass. With
// a perfect heuristic, paths pop off the frontier in exact descending
// total-delay order, so the first K pops are the K longest paths —
// O(K · depth · fanout · log frontier) without enumerating the whole
// exponential path set.
//
// Used by the timing report and for verifying that the arrival-time
// reformulation (problem PP) really covers the dominant paths.
#pragma once

#include <vector>

#include "netlist/circuit.hpp"
#include "timing/arrival.hpp"

namespace lrsizer::timing {

struct TimedPath {
  std::vector<netlist::NodeId> nodes;  ///< driver .. primary-output component
  double delay_s = 0.0;                ///< Σ D_i over the nodes
};

/// The `k` longest source→sink paths (fewer if the circuit has fewer).
/// `arrivals` must correspond to the current sizes.
std::vector<TimedPath> top_k_paths(const netlist::Circuit& circuit,
                                   const ArrivalAnalysis& arrivals, int k);

}  // namespace lrsizer::timing
