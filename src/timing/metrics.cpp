#include "timing/metrics.hpp"

#include "timing/arrival.hpp"
#include "util/assert.hpp"

namespace lrsizer::timing {

double total_area(const netlist::Circuit& circuit, const std::vector<double>& x) {
  double area = 0.0;
  for (netlist::NodeId v = circuit.first_component(); v < circuit.end_component(); ++v) {
    area += circuit.area_weight(v) * x[static_cast<std::size_t>(v)];
  }
  return area;
}

double total_cap(const netlist::Circuit& circuit, const std::vector<double>& x) {
  double cap = 0.0;
  for (netlist::NodeId v = circuit.first_component(); v < circuit.end_component(); ++v) {
    cap += circuit.ground_cap(v, x[static_cast<std::size_t>(v)]);
  }
  return cap;
}

Metrics compute_metrics(const netlist::Circuit& circuit,
                        const layout::CouplingSet& coupling,
                        const std::vector<double>& x, CouplingLoadMode mode) {
  LRSIZER_ASSERT(x.size() == static_cast<std::size_t>(circuit.num_nodes()));
  Metrics m;
  m.area_um2 = total_area(circuit, x);
  m.cap_f = total_cap(circuit, x);
  m.power_w = circuit.tech().power_per_farad() * m.cap_f;
  m.noise_f = coupling.noise_linear(x);
  m.noise_exact_f = coupling.noise_exact(x);

  LoadAnalysis loads;
  compute_loads(circuit, coupling, x, mode, loads);
  ArrivalAnalysis arrivals;
  compute_arrivals(circuit, x, loads, arrivals);
  m.delay_s = arrivals.critical_delay;
  return m;
}

}  // namespace lrsizer::timing
