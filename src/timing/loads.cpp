#include "timing/loads.hpp"

#include "util/assert.hpp"

namespace lrsizer::timing {

namespace {

/// Chunk size of the parallel load pass (fixed — the Executor determinism
/// contract keys reduction/chunk shapes to (n, grain) only).
constexpr std::int32_t kGrain = 64;

}  // namespace

// The per-node body, shared verbatim by the sequential, wavefront and
// incremental (compute_node_loads) paths so all three are bit-identical.
// Writes only node v's slots; reads only the children's load_in (complete
// before v under any of those orders) and x.
void compute_node_loads(const netlist::Circuit& circuit,
                        const layout::CouplingSet& coupling,
                        const std::vector<double>& x, CouplingLoadMode mode,
                        LoadAnalysis& out, netlist::NodeId v) {
  using netlist::NodeId;
  using netlist::NodeKind;
  const NodeId sink = circuit.sink();
  const auto i = static_cast<std::size_t>(v);

  double child_sum = circuit.pin_load(v);  // C_L attached at this output
  for (NodeId child : circuit.outputs(v)) {
    if (child == sink) continue;  // the sink edge itself carries no cap
    child_sum += out.load_in[static_cast<std::size_t>(child)];
  }

  switch (circuit.kind(v)) {
    case NodeKind::kGate: {
      // A gate drives its fanout stage; its own input cap faces upstream.
      out.cap_delay[i] = child_sum;
      out.cap_prime[i] = child_sum;
      out.load_in[i] = circuit.unit_cap(v) * x[i];
      break;
    }
    case NodeKind::kWire: {
      const double half = 0.5 * (circuit.unit_cap(v) * x[i] + circuit.fringe_cap(v));
      double couple_const = 0.0;  // Σ c̃_ij (effective)
      double couple_own = 0.0;    // Σ ĉ_ij x_i
      double couple_nbr = 0.0;    // Σ ĉ_ij x_j
      for (const auto& nb : coupling.neighbors(v)) {
        couple_const += nb.c_tilde;
        couple_own += nb.c_hat * x[i];
        couple_nbr += nb.c_hat * x[static_cast<std::size_t>(nb.other)];
      }
      out.cap_delay[i] = half + couple_const + couple_own + couple_nbr + child_sum;
      out.cap_prime[i] = 0.5 * circuit.fringe_cap(v) + couple_const + child_sum;
      // Parent sees both π halves plus the downstream subtree; coupling is
      // included only in propagate mode.
      const double ground_down = half + child_sum;
      out.load_in[i] = half + ground_down;
      if (mode == CouplingLoadMode::kPropagateUpstream) {
        out.load_in[i] += couple_const + couple_own + couple_nbr;
      }
      break;
    }
    case NodeKind::kDriver: {
      out.cap_delay[i] = child_sum;
      out.cap_prime[i] = child_sum;
      out.load_in[i] = 0.0;  // drivers are roots; nothing is upstream
      break;
    }
    case NodeKind::kSource:
    case NodeKind::kSink:
      break;
  }
}

void compute_loads(const netlist::Circuit& circuit, const layout::CouplingSet& coupling,
                   const std::vector<double>& x, CouplingLoadMode mode,
                   LoadAnalysis& out, util::Executor* exec) {
  using netlist::NodeId;

  const auto n = static_cast<std::size_t>(circuit.num_nodes());
  LRSIZER_ASSERT(x.size() == n);
  out.resize(n);

  const NodeId sink = circuit.sink();
  auto load_node = [&](NodeId v) {
    compute_node_loads(circuit, coupling, x, mode, out, v);
  };

  if (util::serial(exec)) {
    // Reverse topological order = descending node index (index contract).
    for (NodeId v = sink - 1; v >= 1; --v) load_node(v);
    return;
  }
  // Wavefront order: a node's children all live in earlier reverse levels,
  // so each level is embarrassingly parallel.
  const netlist::LevelSchedule& schedule = circuit.reverse_levels();
  for (std::int32_t l = 0; l < schedule.num_levels(); ++l) {
    const auto nodes = schedule.level(l);
    exec->run_chunks(static_cast<std::int32_t>(nodes.size()), kGrain,
                     [&](std::int32_t begin, std::int32_t end) {
                       for (std::int32_t k = begin; k < end; ++k) {
                         load_node(nodes[static_cast<std::size_t>(k)]);
                       }
                     });
  }
}

}  // namespace lrsizer::timing
