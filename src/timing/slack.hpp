// Required times and slacks: the backward counterpart of compute_arrivals.
//
//   req_i = min over consumers of (req_consumer − D_consumer); req at the
//   sink inputs is the delay bound A0.
//   slack_i = req_i − a_i.
//
// Negative slack marks nodes on paths violating the bound; zero slack (with
// a tight bound) marks the critical path(s). Used by the timing report, the
// TILOS baseline (which upsizes the most negative-slack path), and tests.
#pragma once

#include <vector>

#include "netlist/circuit.hpp"
#include "timing/arrival.hpp"

namespace lrsizer::timing {

struct SlackAnalysis {
  std::vector<double> required;  ///< req_i per node
  std::vector<double> slack;     ///< req_i − a_i per node
  double worst_slack = 0.0;      ///< min over components
};

/// One reverse-topological sweep; O(|V| + |E|).
void compute_slacks(const netlist::Circuit& circuit, const ArrivalAnalysis& arrivals,
                    double delay_bound_s, SlackAnalysis& out);

/// Nodes sorted by ascending slack (most critical first); ties by node id.
std::vector<netlist::NodeId> nodes_by_criticality(const netlist::Circuit& circuit,
                                                  const SlackAnalysis& slacks);

}  // namespace lrsizer::timing
