// Weighted upstream resistance R_i (paper §2.1 / Theorem 5).
//
// R_i = Σ_{k ∈ upstream(i)} μ_k · r_k, where upstream(i) is stage-local:
// the chain of wires from component i back to (and including) the driving
// gate or input driver of i's stage. Those are exactly the components whose
// Elmore delay contains i's capacitance, so ∂(Σ μ_k D_k)/∂c_i = R_i.
//
// Recursion over the circuit graph (one topological sweep):
//   R_i = Σ_{p ∈ input(i), p ≠ source} [ μ_p·r_p + (p is a wire ? R_p : 0) ]
// — gates and drivers terminate the recursion because their resistance
// isolates everything further upstream from i's load.
//
// With μ ≡ 1 this degenerates to the plain upstream resistance of §2.1.
#pragma once

#include <vector>

#include "netlist/circuit.hpp"
#include "util/parallel.hpp"

namespace lrsizer::timing {

/// One topological sweep; O(|V| + |E|). `mu` is indexed by NodeId. With a
/// parallel `exec`, runs wavefront-by-wavefront over
/// `circuit.forward_levels()` — bit-identical to the serial pass at any
/// thread count.
void compute_weighted_upstream(const netlist::Circuit& circuit,
                               const std::vector<double>& x,
                               const std::vector<double>& mu,
                               std::vector<double>& r_up,
                               util::Executor* exec = nullptr);

}  // namespace lrsizer::timing
