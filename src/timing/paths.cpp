#include "timing/paths.hpp"

#include <algorithm>
#include <queue>

#include "util/assert.hpp"

namespace lrsizer::timing {

namespace {

struct Frontier {
  double bound;       // delay so far + longest completion from tail
  double delay_sofar; // Σ D over nodes so far (including tail)
  bool completed;     // tail connects to the sink; bound == delay_sofar
  std::vector<netlist::NodeId> nodes;
};

struct FrontierWorse {
  bool operator()(const Frontier& a, const Frontier& b) const {
    return a.bound < b.bound;  // max-heap on the bound
  }
};

}  // namespace

std::vector<TimedPath> top_k_paths(const netlist::Circuit& circuit,
                                   const ArrivalAnalysis& arrivals, int k) {
  LRSIZER_ASSERT(k >= 1);
  using netlist::NodeId;
  const NodeId sink = circuit.sink();
  const auto n = static_cast<std::size_t>(circuit.num_nodes());
  LRSIZER_ASSERT(arrivals.delay.size() == n);

  // Longest completion from v to the sink, *excluding* v's own delay
  // (computed over v's successors). Reverse-topological pass.
  std::vector<double> completion(n, 0.0);
  for (NodeId v = sink - 1; v >= 1; --v) {
    double best = 0.0;
    for (NodeId o : circuit.outputs(v)) {
      if (o == sink) {
        best = std::max(best, 0.0);
      } else {
        best = std::max(best,
                        arrivals.delay[static_cast<std::size_t>(o)] +
                            completion[static_cast<std::size_t>(o)]);
      }
    }
    completion[static_cast<std::size_t>(v)] = best;
  }

  std::priority_queue<Frontier, std::vector<Frontier>, FrontierWorse> frontier;
  for (NodeId d : circuit.outputs(circuit.source())) {
    const auto i = static_cast<std::size_t>(d);
    frontier.push(
        Frontier{arrivals.delay[i] + completion[i], arrivals.delay[i], false, {d}});
  }

  // Completed paths are re-queued with their exact delay as the bound, so
  // everything (partial and complete) pops in descending order of the best
  // total delay it can still achieve — the first K completed pops are the
  // K longest paths.
  std::vector<TimedPath> result;
  while (!frontier.empty() && static_cast<int>(result.size()) < k) {
    Frontier top = frontier.top();
    frontier.pop();
    if (top.completed) {
      result.push_back(TimedPath{std::move(top.nodes), top.delay_sofar});
      continue;
    }
    const NodeId tail = top.nodes.back();
    for (NodeId o : circuit.outputs(tail)) {
      if (o == sink) {
        frontier.push(Frontier{top.delay_sofar, top.delay_sofar, true, top.nodes});
        continue;
      }
      Frontier next;
      const auto i = static_cast<std::size_t>(o);
      next.delay_sofar = top.delay_sofar + arrivals.delay[i];
      next.bound = next.delay_sofar + completion[i];
      next.completed = false;
      next.nodes = top.nodes;
      next.nodes.push_back(o);
      frontier.push(std::move(next));
    }
  }
  return result;
}

}  // namespace lrsizer::timing
