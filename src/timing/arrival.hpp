// Elmore delays and arrival times (paper §4.1, problem PP).
//
//   D_i = r_i · C_i            (C_i from compute_loads)
//   a_i = D_i + max_{j ∈ input(i)} a_j   (a_source = 0)
//   critical delay = max_{j ∈ input(sink)} a_j
//
// The arrival reformulation replaces the exponentially many path
// constraints Σ_{i∈π} D_i ≤ A0 with one inequality per edge.
#pragma once

#include <vector>

#include "netlist/circuit.hpp"
#include "timing/loads.hpp"
#include "util/parallel.hpp"

namespace lrsizer::timing {

struct ArrivalAnalysis {
  std::vector<double> delay;    ///< D_i per node (0 for source/sink)
  std::vector<double> arrival;  ///< a_i per node (source = 0)
  double critical_delay = 0.0;  ///< D of the circuit

  void resize(std::size_t n) {
    // Same shape-keyed refill skip as LoadAnalysis::resize: the pass writes
    // every node 1..sink-1 plus arrival[sink]; the remaining entries keep
    // the first-time zeros.
    if (delay.size() == n) return;
    delay.assign(n, 0.0);
    arrival.assign(n, 0.0);
  }
};

/// One topological sweep; O(|V| + |E|). With a parallel `exec`, runs
/// wavefront-by-wavefront over `circuit.forward_levels()` — bit-identical to
/// the serial pass at any thread count.
void compute_arrivals(const netlist::Circuit& circuit, const std::vector<double>& x,
                      const LoadAnalysis& loads, ArrivalAnalysis& out,
                      util::Executor* exec = nullptr);

/// Nodes of one critical path, source-side first (excludes source/sink).
std::vector<netlist::NodeId> critical_path(const netlist::Circuit& circuit,
                                           const ArrivalAnalysis& arrivals);

}  // namespace lrsizer::timing
