#include "timing/upstream.hpp"

#include "util/assert.hpp"

namespace lrsizer::timing {

namespace {

/// Fixed chunk size of the parallel upstream pass (Executor contract).
constexpr std::int32_t kGrain = 64;

}  // namespace

void compute_weighted_upstream(const netlist::Circuit& circuit,
                               const std::vector<double>& x,
                               const std::vector<double>& mu,
                               std::vector<double>& r_up,
                               util::Executor* exec) {
  using netlist::NodeId;

  const auto n = static_cast<std::size_t>(circuit.num_nodes());
  LRSIZER_ASSERT(x.size() == n);
  LRSIZER_ASSERT(mu.size() == n);
  // Every node 1..sink-1 is written below; source/sink keep the first-time
  // zeros (shape-keyed refill skip, see LoadAnalysis::resize).
  if (r_up.size() != n) r_up.assign(n, 0.0);

  // Shared per-node body: writes r_up[v] only, reads parents' r_up (earlier
  // forward levels).
  auto upstream_node = [&](NodeId v) {
    double acc = 0.0;
    for (NodeId p : circuit.inputs(v)) {
      if (p == circuit.source()) continue;  // drivers: nothing upstream
      const auto pi = static_cast<std::size_t>(p);
      acc += mu[pi] * circuit.resistance(p, x[pi]);
      if (circuit.is_wire(p)) acc += r_up[pi];
    }
    r_up[static_cast<std::size_t>(v)] = acc;
  };

  if (util::serial(exec)) {
    for (NodeId v = 1; v < circuit.sink(); ++v) upstream_node(v);
    return;
  }
  const netlist::LevelSchedule& schedule = circuit.forward_levels();
  for (std::int32_t l = 0; l < schedule.num_levels(); ++l) {
    const auto nodes = schedule.level(l);
    exec->run_chunks(static_cast<std::int32_t>(nodes.size()), kGrain,
                     [&](std::int32_t begin, std::int32_t end) {
                       for (std::int32_t k = begin; k < end; ++k) {
                         upstream_node(nodes[static_cast<std::size_t>(k)]);
                       }
                     });
  }
}

}  // namespace lrsizer::timing
