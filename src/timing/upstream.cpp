#include "timing/upstream.hpp"

#include "util/assert.hpp"

namespace lrsizer::timing {

void compute_weighted_upstream(const netlist::Circuit& circuit,
                               const std::vector<double>& x,
                               const std::vector<double>& mu,
                               std::vector<double>& r_up) {
  using netlist::NodeId;

  const auto n = static_cast<std::size_t>(circuit.num_nodes());
  LRSIZER_ASSERT(x.size() == n);
  LRSIZER_ASSERT(mu.size() == n);
  r_up.assign(n, 0.0);

  for (NodeId v = 1; v < circuit.sink(); ++v) {
    double acc = 0.0;
    for (NodeId p : circuit.inputs(v)) {
      if (p == circuit.source()) continue;  // drivers: nothing upstream
      const auto pi = static_cast<std::size_t>(p);
      acc += mu[pi] * circuit.resistance(p, x[pi]);
      if (circuit.is_wire(p)) acc += r_up[pi];
    }
    r_up[static_cast<std::size_t>(v)] = acc;
  }
}

}  // namespace lrsizer::timing
