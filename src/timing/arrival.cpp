#include "timing/arrival.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace lrsizer::timing {

namespace {

/// Fixed chunk size of the parallel arrival pass (Executor contract).
constexpr std::int32_t kGrain = 64;

}  // namespace

void compute_arrivals(const netlist::Circuit& circuit, const std::vector<double>& x,
                      const LoadAnalysis& loads, ArrivalAnalysis& out,
                      util::Executor* exec) {
  using netlist::NodeId;

  const auto n = static_cast<std::size_t>(circuit.num_nodes());
  LRSIZER_ASSERT(x.size() == n);
  LRSIZER_ASSERT(loads.cap_delay.size() == n);
  out.resize(n);

  const NodeId sink = circuit.sink();
  // Shared per-node body (see compute_loads): writes v's slots only, reads
  // parents' arrivals — complete under index order and wavefront order alike.
  auto arrive_node = [&](NodeId v) {
    const auto i = static_cast<std::size_t>(v);
    out.delay[i] = circuit.resistance(v, x[i]) * loads.cap_delay[i];
    double max_in = 0.0;
    for (NodeId p : circuit.inputs(v)) {
      max_in = std::max(max_in, out.arrival[static_cast<std::size_t>(p)]);
    }
    out.arrival[i] = max_in + out.delay[i];
  };

  if (util::serial(exec)) {
    for (NodeId v = 1; v < sink; ++v) arrive_node(v);
  } else {
    const netlist::LevelSchedule& schedule = circuit.forward_levels();
    for (std::int32_t l = 0; l < schedule.num_levels(); ++l) {
      const auto nodes = schedule.level(l);
      exec->run_chunks(static_cast<std::int32_t>(nodes.size()), kGrain,
                       [&](std::int32_t begin, std::int32_t end) {
                         for (std::int32_t k = begin; k < end; ++k) {
                           arrive_node(nodes[static_cast<std::size_t>(k)]);
                         }
                       });
    }
  }

  out.critical_delay = 0.0;
  for (NodeId p : circuit.inputs(sink)) {
    out.critical_delay =
        std::max(out.critical_delay, out.arrival[static_cast<std::size_t>(p)]);
  }
  out.arrival[static_cast<std::size_t>(sink)] = out.critical_delay;
}

std::vector<netlist::NodeId> critical_path(const netlist::Circuit& circuit,
                                           const ArrivalAnalysis& arrivals) {
  using netlist::NodeId;

  // Walk back from the latest-arriving sink input, always taking the
  // latest-arriving parent.
  NodeId v = netlist::kInvalidNode;
  double best = -1.0;
  for (NodeId p : circuit.inputs(circuit.sink())) {
    if (arrivals.arrival[static_cast<std::size_t>(p)] > best) {
      best = arrivals.arrival[static_cast<std::size_t>(p)];
      v = p;
    }
  }
  LRSIZER_ASSERT(v != netlist::kInvalidNode);

  std::vector<NodeId> path;
  while (v != circuit.source()) {
    path.push_back(v);
    NodeId next = netlist::kInvalidNode;
    best = -1.0;
    for (NodeId p : circuit.inputs(v)) {
      const double a = arrivals.arrival[static_cast<std::size_t>(p)];
      if (a > best) {
        best = a;
        next = p;
      }
    }
    LRSIZER_ASSERT(next != netlist::kInvalidNode);
    v = next;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace lrsizer::timing
