#include "layout/coloring.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace lrsizer::layout {

netlist::LevelSchedule build_coupling_colors(const netlist::Circuit& circuit,
                                             const CouplingSet& coupling) {
  using netlist::NodeId;

  const auto n = static_cast<std::size_t>(circuit.num_nodes());
  std::vector<std::int32_t> color(n, -1);
  std::int32_t max_color = 0;

  // Greedy in ascending component order; neighbors with smaller ids are
  // already colored, neighbors with larger ids will see v as a conflict and
  // land strictly above — which is what makes the coloring order-preserving.
  for (NodeId v = circuit.first_component(); v < circuit.end_component(); ++v) {
    std::int32_t c = -1;
    for (const auto& nb : coupling.neighbors(v)) {
      // Distance 1: the neighbor itself.
      if (nb.other < v) {
        c = std::max(c, color[static_cast<std::size_t>(nb.other)]);
      }
      // Distance 2: the neighbor's neighbors.
      for (const auto& nb2 : coupling.neighbors(nb.other)) {
        if (nb2.other != v && nb2.other < v) {
          c = std::max(c, color[static_cast<std::size_t>(nb2.other)]);
        }
      }
    }
    color[static_cast<std::size_t>(v)] = c + 1;
    max_color = std::max(max_color, c + 1);
  }

  return netlist::LevelSchedule::from_levels(color, max_color + 1);
}

}  // namespace lrsizer::layout
