// Coupling-aware coloring of the sized components — the schedule that turns
// the LRS Gauss-Seidel sweep (core/lrs.cpp, paper Figure 8 step S4) into a
// deterministic colored sweep (docs/ARCHITECTURE.md §Parallel kernels).
//
// Within one LRS pass the only live dependency between components is the
// coupling adjacency: resizing wire i reads the current sizes x_j of its
// coupling neighbors j ∈ N(i) (loads and upstream resistances are frozen at
// the pass start). The coloring groups components into classes that can be
// resized concurrently, with two properties:
//
//   * order-preserving: for every coupling pair (a, b) with a < b,
//     color(a) < color(b). Sweeping the colors in ascending order therefore
//     reproduces the paper's ascending-index Gauss-Seidel sweep *bit for
//     bit*: when v is resized, every neighbor j < v is already updated and
//     every neighbor j > v still holds its pre-sweep value — exactly the
//     sequential semantics, at any thread count.
//   * distance-2: two same-color components are neither coupling-adjacent
//     nor share a coupling neighbor, so concurrent resizes within a class
//     touch disjoint neighborhoods (no write/write conflicts, and no reads
//     of a value another class member is writing).
//
// Greedy assignment in ascending component order: color(v) = 1 + max color
// over already-colored conflicts (distance ≤ 2 in the coupling graph), 0
// when unconflicted. Gates and uncoupled wires all land on color 0; channel
// adjacency graphs are near-paths, so coupled wires need only a handful of
// colors.
#pragma once

#include "layout/neighbors.hpp"
#include "netlist/circuit.hpp"
#include "netlist/levels.hpp"

namespace lrsizer::layout {

/// Color classes over [first_component, end_component), returned as a
/// LevelSchedule whose "levels" are the colors in sweep order.
netlist::LevelSchedule build_coupling_colors(const netlist::Circuit& circuit,
                                             const CouplingSet& coupling);

}  // namespace lrsizer::layout
