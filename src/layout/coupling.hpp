// Physical coupling capacitance between adjacent wires (paper §3.1).
//
// Exact model (Eq. 2), for wires i, j with sizes (widths) x_i, x_j, overlap
// length l_ij, middle-to-middle pitch d_ij and unit-length fringing f̂_ij:
//
//   c_ij = (f̂_ij · l_ij / d_ij) · 1 / (1 - (x_i + x_j) / (2 d_ij))
//        = c̃_ij · 1 / (1 - u),     u = (x_i + x_j) / (2 d_ij) ∈ (0, 1)
//
// Posynomial approximation (Eq. 3 / Theorem 1): truncate the geometric
// series 1/(1-u) = Σ uⁿ after k terms; the relative error is exactly uᵏ.
// The paper uses k = 2, i.e. c_ij ≈ c̃_ij (1 + u) — the linear form whose
// sizing coefficient is ĉ_ij = c̃_ij / (2 d_ij).
#pragma once

#include "util/assert.hpp"

namespace lrsizer::layout {

/// Geometry/technology of one adjacent-wire pair.
struct CouplingGeometry {
  double overlap_um = 0.0;      ///< l_ij
  double pitch_um = 4.0;        ///< d_ij
  double fringe_per_um = 0.25e-15;  ///< f̂_ij [F/µm]

  /// c̃_ij = f̂·l/d — the size-independent prefactor [F].
  double c_tilde() const { return fringe_per_um * overlap_um / pitch_um; }
  /// ĉ_ij = c̃/(2d) — the linear sizing coefficient [F/µm].
  double c_hat() const { return c_tilde() / (2.0 * pitch_um); }
};

/// u = (x_i + x_j) / (2 d).
inline double coupling_ratio(double xi, double xj, double pitch_um) {
  LRSIZER_ASSERT(pitch_um > 0.0);
  return (xi + xj) / (2.0 * pitch_um);
}

/// Exact Eq. 2. Requires u < 1 (wires do not touch).
double exact_coupling_cap(const CouplingGeometry& geom, double xi, double xj);

/// Order-k truncation (Eq. 3 generalized): c̃ · Σ_{n=0}^{k-1} uⁿ, k >= 1.
double posynomial_coupling_cap(const CouplingGeometry& geom, double xi, double xj,
                               int order_k);

/// Theorem 1(2): relative error of the order-k truncation = uᵏ.
double truncation_error_ratio(double u, int order_k);

}  // namespace lrsizer::layout
