#include "layout/ordering.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace lrsizer::layout {

DenseWeights::DenseWeights(std::int32_t n, std::vector<double> values)
    : n_(n), values_(std::move(values)) {
  LRSIZER_ASSERT(n >= 0);
  LRSIZER_ASSERT(values_.size() ==
                 static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
}

double ordering_cost(const WeightView& weights, const std::vector<std::int32_t>& order) {
  double cost = 0.0;
  for (std::size_t k = 1; k < order.size(); ++k) {
    cost += weights.at(order[k - 1], order[k]);
  }
  return cost;
}

std::vector<std::int32_t> woss_ordering(const WeightView& weights) {
  const std::int32_t n = weights.size();
  if (n == 0) return {};
  if (n == 1) return {0};

  // A1: seed with the global minimum-weight edge (ties: smallest indices).
  std::int32_t best_a = 0;
  std::int32_t best_b = 1;
  double best_w = weights.at(0, 1);
  for (std::int32_t a = 0; a < n; ++a) {
    for (std::int32_t b = a + 1; b < n; ++b) {
      if (weights.at(a, b) < best_w) {
        best_w = weights.at(a, b);
        best_a = a;
        best_b = b;
      }
    }
  }

  std::vector<std::int32_t> order = {best_a, best_b};
  std::vector<bool> used(static_cast<std::size_t>(n), false);
  used[static_cast<std::size_t>(best_a)] = true;
  used[static_cast<std::size_t>(best_b)] = true;

  // A2: repeatedly append the nearest unused wire to the chain tail.
  for (std::int32_t k = 2; k < n; ++k) {
    const std::int32_t tail = order.back();
    std::int32_t best_j = -1;
    double best = std::numeric_limits<double>::infinity();
    for (std::int32_t j = 0; j < n; ++j) {
      if (used[static_cast<std::size_t>(j)]) continue;
      if (weights.at(tail, j) < best) {
        best = weights.at(tail, j);
        best_j = j;
      }
    }
    LRSIZER_ASSERT(best_j >= 0);
    order.push_back(best_j);
    used[static_cast<std::size_t>(best_j)] = true;
  }
  return order;
}

std::vector<std::int32_t> optimal_ordering_bruteforce(const WeightView& weights) {
  const std::int32_t n = weights.size();
  LRSIZER_ASSERT_MSG(n <= 16, "exact ordering is exponential; use n <= 16");
  if (n == 0) return {};
  if (n == 1) return {0};

  // Held-Karp path DP: dp[mask][last] = cheapest chain visiting `mask`
  // that ends at `last`.
  const std::uint32_t full = (n == 32) ? ~0u : ((1u << n) - 1u);
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> dp(static_cast<std::size_t>(full + 1) * static_cast<std::size_t>(n),
                         inf);
  std::vector<std::int8_t> parent(dp.size(), -1);
  auto idx = [n](std::uint32_t mask, std::int32_t last) {
    return static_cast<std::size_t>(mask) * static_cast<std::size_t>(n) +
           static_cast<std::size_t>(last);
  };
  for (std::int32_t v = 0; v < n; ++v) dp[idx(1u << v, v)] = 0.0;

  for (std::uint32_t mask = 1; mask <= full; ++mask) {
    for (std::int32_t last = 0; last < n; ++last) {
      if ((mask & (1u << last)) == 0) continue;
      const double base = dp[idx(mask, last)];
      if (base == inf) continue;
      for (std::int32_t next = 0; next < n; ++next) {
        if ((mask & (1u << next)) != 0) continue;
        const std::uint32_t nmask = mask | (1u << next);
        const double cand = base + weights.at(last, next);
        if (cand < dp[idx(nmask, next)]) {
          dp[idx(nmask, next)] = cand;
          parent[idx(nmask, next)] = static_cast<std::int8_t>(last);
        }
      }
    }
  }

  std::int32_t best_last = 0;
  for (std::int32_t v = 1; v < n; ++v) {
    if (dp[idx(full, v)] < dp[idx(full, best_last)]) best_last = v;
  }
  std::vector<std::int32_t> order;
  std::uint32_t mask = full;
  std::int32_t last = best_last;
  while (last >= 0) {
    order.push_back(last);
    const std::int8_t prev = parent[idx(mask, last)];
    mask &= ~(1u << last);
    last = prev;
  }
  LRSIZER_ASSERT(mask == 0);
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<std::int32_t> random_ordering(std::int32_t n, std::uint64_t seed) {
  std::vector<std::int32_t> order(static_cast<std::size_t>(n));
  for (std::int32_t v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
  util::Rng rng(seed);
  for (std::int32_t k = n - 1; k > 0; --k) {
    const auto j = static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(k) + 1));
    std::swap(order[static_cast<std::size_t>(k)], order[j]);
  }
  return order;
}

}  // namespace lrsizer::layout
