// Wire ordering for the Switching Similarity (SS) problem (paper §3.2).
//
// Given n wires and the pairwise weight matrix w(i,j) = 1 - similarity(i,j),
// find an ordering <w1..wn> minimizing Σ w(w_k, w_{k+1}) — the total
// effective loading between neighboring tracks. SS is NP-hard (Theorem 2;
// no constant-factor approximation unless P=NP), so the paper uses the
// greedy WOSS heuristic (Figure 7): seed with the minimum-weight edge, then
// repeatedly append the nearest unused wire to the chain tail. O(n²).
//
// We also provide the exhaustive optimum (for n <= 12; used by tests and
// the WOSS-quality bench) and a seeded random ordering baseline.
#pragma once

#include <cstdint>
#include <vector>

namespace lrsizer::layout {

/// Dense symmetric weight accessor: anything with `double at(i, j)` and
/// `int32_t size()`. Kept as a simple interface to avoid copying matrices.
class WeightView {
 public:
  virtual ~WeightView() = default;
  virtual std::int32_t size() const = 0;
  virtual double at(std::int32_t a, std::int32_t b) const = 0;
};

/// Adapter over a row-major dense matrix.
class DenseWeights final : public WeightView {
 public:
  DenseWeights(std::int32_t n, std::vector<double> values);
  std::int32_t size() const override { return n_; }
  double at(std::int32_t a, std::int32_t b) const override {
    return values_[static_cast<std::size_t>(a) * static_cast<std::size_t>(n_) +
                   static_cast<std::size_t>(b)];
  }

 private:
  std::int32_t n_;
  std::vector<double> values_;
};

/// Σ of adjacent-pair weights along `order`.
double ordering_cost(const WeightView& weights, const std::vector<std::int32_t>& order);

/// Paper Figure 7 (WOSS): greedy chain growth from the minimum-weight edge.
std::vector<std::int32_t> woss_ordering(const WeightView& weights);

/// Exhaustive minimum over all orderings; n <= 12.
std::vector<std::int32_t> optimal_ordering_bruteforce(const WeightView& weights);

/// Seeded shuffle baseline.
std::vector<std::int32_t> random_ordering(std::int32_t n, std::uint64_t seed);

}  // namespace lrsizer::layout
