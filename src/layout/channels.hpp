// Channel model: which wires can couple with which.
//
// The paper assumes a routed design where every wire has known geometric
// neighbors. Lacking real layout, we reproduce the same abstraction: wires
// are bucketed into routing channels by the logic level of their net (wires
// of one pipeline stage run side by side), each channel holding at most
// `max_channel_width` tracks. The initial track order inside a channel is a
// seeded shuffle (pre-optimization placement); stage 1 (WOSS) then reorders
// the tracks. Only wires within one channel couple.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/circuit.hpp"
#include "netlist/logic_netlist.hpp"

namespace lrsizer::layout {

struct ChannelOptions {
  std::int32_t max_channel_width = 24;  ///< tracks per channel
  std::uint64_t seed = 1;               ///< initial placement shuffle
};

struct ChannelAssignment {
  /// Wire node ids per channel, in initial track order.
  std::vector<std::vector<netlist::NodeId>> channels;
};

/// Bucket every wire of `circuit` into channels. `net_of_node` maps circuit
/// nodes to logic-netlist gate indices (from ElabResult); `netlist` supplies
/// the per-net logic level.
ChannelAssignment assign_channels(const netlist::Circuit& circuit,
                                  const std::vector<std::int32_t>& net_of_node,
                                  const netlist::LogicNetlist& netlist,
                                  const ChannelOptions& options = ChannelOptions{});

}  // namespace lrsizer::layout
