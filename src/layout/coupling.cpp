#include "layout/coupling.hpp"

#include <cmath>

namespace lrsizer::layout {

double exact_coupling_cap(const CouplingGeometry& geom, double xi, double xj) {
  const double u = coupling_ratio(xi, xj, geom.pitch_um);
  LRSIZER_ASSERT_MSG(u < 1.0, "wires overlap: (x_i + x_j)/2 >= pitch");
  return geom.c_tilde() / (1.0 - u);
}

double posynomial_coupling_cap(const CouplingGeometry& geom, double xi, double xj,
                               int order_k) {
  LRSIZER_ASSERT(order_k >= 1);
  const double u = coupling_ratio(xi, xj, geom.pitch_um);
  double sum = 0.0;
  double term = 1.0;
  for (int n = 0; n < order_k; ++n) {
    sum += term;
    term *= u;
  }
  return geom.c_tilde() * sum;
}

double truncation_error_ratio(double u, int order_k) {
  LRSIZER_ASSERT(order_k >= 1);
  LRSIZER_ASSERT(std::abs(u) < 1.0);
  return std::pow(u, order_k);
}

}  // namespace lrsizer::layout
