#include "layout/channels.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace lrsizer::layout {

ChannelAssignment assign_channels(const netlist::Circuit& circuit,
                                  const std::vector<std::int32_t>& net_of_node,
                                  const netlist::LogicNetlist& netlist,
                                  const ChannelOptions& options) {
  LRSIZER_ASSERT(options.max_channel_width >= 2);
  LRSIZER_ASSERT(net_of_node.size() == static_cast<std::size_t>(circuit.num_nodes()));

  // Wires per logic level.
  std::vector<std::vector<netlist::NodeId>> by_level(
      static_cast<std::size_t>(netlist.depth()) + 1);
  for (netlist::NodeId v = circuit.first_component(); v < circuit.end_component(); ++v) {
    if (!circuit.is_wire(v)) continue;
    const std::int32_t net = net_of_node[static_cast<std::size_t>(v)];
    LRSIZER_ASSERT_MSG(net >= 0, "wire without a net");
    const std::int32_t lvl = netlist.level(net);
    by_level[static_cast<std::size_t>(lvl)].push_back(v);
  }

  util::Rng rng(options.seed);
  ChannelAssignment assignment;
  for (auto& wires : by_level) {
    if (wires.empty()) continue;
    // Seeded shuffle = arbitrary initial placement.
    for (std::size_t k = wires.size() - 1; k > 0; --k) {
      const auto j = static_cast<std::size_t>(rng.next_below(k + 1));
      std::swap(wires[k], wires[j]);
    }
    // Split into channels of at most max_channel_width tracks.
    const auto width = static_cast<std::size_t>(options.max_channel_width);
    for (std::size_t begin = 0; begin < wires.size(); begin += width) {
      const std::size_t end = std::min(begin + width, wires.size());
      if (end - begin < 2) {
        // A single-track channel has no neighbors; merge it into the
        // previous channel if one exists.
        if (!assignment.channels.empty() && end > begin) {
          assignment.channels.back().push_back(wires[begin]);
        }
        continue;
      }
      assignment.channels.emplace_back(wires.begin() + static_cast<std::ptrdiff_t>(begin),
                                       wires.begin() + static_cast<std::ptrdiff_t>(end));
    }
  }
  return assignment;
}

}  // namespace lrsizer::layout
