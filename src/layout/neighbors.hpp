// Adjacent-wire coupling pairs: the paper's N(i) / I(i) sets plus the
// noise metrics over them.
//
// After stage 1 fixes a track order per channel, adjacent tracks form
// coupling pairs. Each pair carries its geometry (overlap, pitch, fringing)
// and the stage-1 Miller weight m_ij = 1 - similarity(i,j). With Miller
// folding enabled (the literal reading of the paper's Eq. 1), the effective
// coefficients are m_ij·c̃_ij and m_ij·ĉ_ij — still constants, so every
// posynomial property is preserved; disabled, the pure Eq. 3 capacitances
// are used (the paper's stage-2 text).
//
// Definition note (docs/ARCHITECTURE.md, decision D1): I(i) = { j ∈ N(i) : j > i }, so the noise
// double sum Σ_{i∈W} Σ_{j∈I(i)} counts every adjacent pair exactly once.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "layout/coupling.hpp"
#include "netlist/circuit.hpp"
#include "util/memtrack.hpp"

namespace lrsizer::layout {

class CouplingSet {
 public:
  struct Pair {
    netlist::NodeId a = netlist::kInvalidNode;  ///< smaller node id
    netlist::NodeId b = netlist::kInvalidNode;  ///< larger node id
    CouplingGeometry geom;
    double miller = 1.0;  ///< folded into the effective coefficients
  };

  /// One entry of N(i): the neighbor and the effective coefficients.
  struct Neighbor {
    netlist::NodeId other = netlist::kInvalidNode;
    double c_hat = 0.0;    ///< effective ĉ_ij [F/µm]
    double c_tilde = 0.0;  ///< effective c̃_ij [F]
    std::int32_t pair = -1;
  };

  CouplingSet() = default;
  CouplingSet(netlist::NodeId num_nodes, std::vector<Pair> pairs);

  const std::vector<Pair>& pairs() const { return pairs_; }
  std::span<const Neighbor> neighbors(netlist::NodeId v) const;

  /// Pairs *owned* by wire v, i.e. { (v, j) : j ∈ I(v) } — the per-wire
  /// slice of the noise double sum (each pair is owned by its smaller node).
  std::span<const std::int32_t> owned_pairs(netlist::NodeId v) const;

  /// Σ_{j∈I(v)} ĉ_vj (x_v + x_j): wire v's own share of the noise metric
  /// (the left side of a distributed per-net crosstalk constraint).
  double owned_noise_linear(netlist::NodeId v, const std::vector<double>& x) const;

  /// Effective ĉ_ij of pair p (Miller folded).
  double pair_c_hat(std::int32_t p) const;
  /// Effective c̃_ij of pair p (Miller folded).
  double pair_c_tilde(std::int32_t p) const;

  /// Σ_{i∈W} Σ_{j∈I(i)} ĉ_ij (x_i + x_j) — the sizing-dependent noise the
  /// paper's Table 1 reports and the modified crosstalk constraint bounds.
  double noise_linear(const std::vector<double>& x) const;

  /// Full order-k posynomial noise: Σ c̃_ij Σ_{n<k} u^n.
  double noise_posynomial(const std::vector<double>& x, int order_k) const;

  /// Exact Eq. 2 noise: Σ c̃_ij / (1 - u). Pairs at u >= 1 are clamped to
  /// the posynomial order-4 value (geometrically impossible region).
  double noise_exact(const std::vector<double>& x) const;

  void account_memory(util::MemoryTracker& tracker) const;

 private:
  std::vector<Pair> pairs_;
  std::vector<std::int32_t> offset_;
  std::vector<Neighbor> entries_;
  std::vector<std::int32_t> owner_offset_;
  std::vector<std::int32_t> owner_pairs_;
};

struct NeighborOptions {
  double pitch_um = 4.0;
  double fringe_per_um = 0.25e-15;  ///< f̂_ij [F/µm]
  bool fold_miller = true;
};

/// Miller weight callback: (wire_a, wire_b) -> 1 - similarity. Return 1.0
/// everywhere to reproduce the paper's unweighted stage-2 constraint.
using MillerFn = std::function<double(netlist::NodeId, netlist::NodeId)>;

/// Build coupling pairs from per-channel track orders: adjacent tracks
/// couple with overlap = min(length_a, length_b).
CouplingSet build_coupling_set(const netlist::Circuit& circuit,
                               const std::vector<std::vector<netlist::NodeId>>& orders,
                               const NeighborOptions& options,
                               const MillerFn& miller = {});

}  // namespace lrsizer::layout
