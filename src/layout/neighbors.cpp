#include "layout/neighbors.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace lrsizer::layout {

CouplingSet::CouplingSet(netlist::NodeId num_nodes, std::vector<Pair> pairs)
    : pairs_(std::move(pairs)) {
  for (auto& p : pairs_) {
    LRSIZER_ASSERT(p.a >= 0 && p.b >= 0 && p.a != p.b);
    if (p.a > p.b) std::swap(p.a, p.b);
    LRSIZER_ASSERT(p.b < num_nodes);
    LRSIZER_ASSERT(p.miller >= 0.0 && p.miller <= 2.0);
  }

  offset_.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  for (const auto& p : pairs_) {
    ++offset_[static_cast<std::size_t>(p.a) + 1];
    ++offset_[static_cast<std::size_t>(p.b) + 1];
  }
  for (std::size_t i = 1; i < offset_.size(); ++i) offset_[i] += offset_[i - 1];
  entries_.resize(static_cast<std::size_t>(offset_.back()));
  std::vector<std::int32_t> cursor(offset_.begin(), offset_.end() - 1);
  for (std::int32_t p = 0; p < static_cast<std::int32_t>(pairs_.size()); ++p) {
    const auto& pr = pairs_[static_cast<std::size_t>(p)];
    const double c_hat = pr.miller * pr.geom.c_hat();
    const double c_tilde = pr.miller * pr.geom.c_tilde();
    entries_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(pr.a)]++)] =
        Neighbor{pr.b, c_hat, c_tilde, p};
    entries_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(pr.b)]++)] =
        Neighbor{pr.a, c_hat, c_tilde, p};
  }

  // Owner CSR: pair p belongs to I(pair.a).
  owner_offset_.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  for (const auto& p : pairs_) ++owner_offset_[static_cast<std::size_t>(p.a) + 1];
  for (std::size_t i = 1; i < owner_offset_.size(); ++i) {
    owner_offset_[i] += owner_offset_[i - 1];
  }
  owner_pairs_.resize(pairs_.size());
  std::vector<std::int32_t> owner_cursor(owner_offset_.begin(), owner_offset_.end() - 1);
  for (std::int32_t p = 0; p < static_cast<std::int32_t>(pairs_.size()); ++p) {
    const auto a = static_cast<std::size_t>(pairs_[static_cast<std::size_t>(p)].a);
    owner_pairs_[static_cast<std::size_t>(owner_cursor[a]++)] = p;
  }
}

std::span<const std::int32_t> CouplingSet::owned_pairs(netlist::NodeId v) const {
  if (owner_offset_.empty()) return {};
  const auto i = static_cast<std::size_t>(v);
  LRSIZER_ASSERT(i + 1 < owner_offset_.size());
  return {owner_pairs_.data() + owner_offset_[i],
          static_cast<std::size_t>(owner_offset_[i + 1] - owner_offset_[i])};
}

double CouplingSet::owned_noise_linear(netlist::NodeId v,
                                       const std::vector<double>& x) const {
  double total = 0.0;
  for (std::int32_t p : owned_pairs(v)) {
    const auto& pr = pairs_[static_cast<std::size_t>(p)];
    total += pair_c_hat(p) * (x[static_cast<std::size_t>(pr.a)] +
                              x[static_cast<std::size_t>(pr.b)]);
  }
  return total;
}

std::span<const CouplingSet::Neighbor> CouplingSet::neighbors(netlist::NodeId v) const {
  if (offset_.empty()) return {};
  const auto i = static_cast<std::size_t>(v);
  LRSIZER_ASSERT(i + 1 < offset_.size());
  return {entries_.data() + offset_[i],
          static_cast<std::size_t>(offset_[i + 1] - offset_[i])};
}

double CouplingSet::pair_c_hat(std::int32_t p) const {
  const auto& pr = pairs_[static_cast<std::size_t>(p)];
  return pr.miller * pr.geom.c_hat();
}

double CouplingSet::pair_c_tilde(std::int32_t p) const {
  const auto& pr = pairs_[static_cast<std::size_t>(p)];
  return pr.miller * pr.geom.c_tilde();
}

double CouplingSet::noise_linear(const std::vector<double>& x) const {
  double total = 0.0;
  for (std::int32_t p = 0; p < static_cast<std::int32_t>(pairs_.size()); ++p) {
    const auto& pr = pairs_[static_cast<std::size_t>(p)];
    total += pair_c_hat(p) * (x[static_cast<std::size_t>(pr.a)] +
                              x[static_cast<std::size_t>(pr.b)]);
  }
  return total;
}

double CouplingSet::noise_posynomial(const std::vector<double>& x, int order_k) const {
  double total = 0.0;
  for (const auto& pr : pairs_) {
    total += pr.miller * posynomial_coupling_cap(pr.geom,
                                                 x[static_cast<std::size_t>(pr.a)],
                                                 x[static_cast<std::size_t>(pr.b)],
                                                 order_k);
  }
  return total;
}

double CouplingSet::noise_exact(const std::vector<double>& x) const {
  double total = 0.0;
  for (const auto& pr : pairs_) {
    const double xa = x[static_cast<std::size_t>(pr.a)];
    const double xb = x[static_cast<std::size_t>(pr.b)];
    const double u = coupling_ratio(xa, xb, pr.geom.pitch_um);
    if (u < 1.0) {
      total += pr.miller * exact_coupling_cap(pr.geom, xa, xb);
    } else {
      total += pr.miller * posynomial_coupling_cap(pr.geom, xa, xb, 4);
    }
  }
  return total;
}

void CouplingSet::account_memory(util::MemoryTracker& tracker) const {
  tracker.add("coupling/pairs", util::vector_bytes(pairs_));
  tracker.add("coupling/adjacency",
              util::vector_bytes(offset_) + util::vector_bytes(entries_) +
                  util::vector_bytes(owner_offset_) + util::vector_bytes(owner_pairs_));
}

CouplingSet build_coupling_set(const netlist::Circuit& circuit,
                               const std::vector<std::vector<netlist::NodeId>>& orders,
                               const NeighborOptions& options,
                               const MillerFn& miller) {
  LRSIZER_ASSERT(options.pitch_um > 0.0);
  std::vector<CouplingSet::Pair> pairs;
  for (const auto& order : orders) {
    for (std::size_t k = 1; k < order.size(); ++k) {
      const netlist::NodeId a = order[k - 1];
      const netlist::NodeId b = order[k];
      LRSIZER_ASSERT(circuit.is_wire(a) && circuit.is_wire(b));
      CouplingSet::Pair pair;
      pair.a = a;
      pair.b = b;
      pair.geom.overlap_um = std::min(circuit.wire_length(a), circuit.wire_length(b));
      pair.geom.pitch_um = options.pitch_um;
      pair.geom.fringe_per_um = options.fringe_per_um;
      pair.miller = (options.fold_miller && miller) ? miller(a, b) : 1.0;
      pairs.push_back(pair);
    }
  }
  return CouplingSet(circuit.num_nodes(), std::move(pairs));
}

}  // namespace lrsizer::layout
