// Status — the error-reporting currency of the session API (api/session.hpp).
//
// The core modules keep their checked-assert contract (wrong inputs die
// loudly; see util/assert.hpp): they are called with invariants the library
// itself established. The session API sits at the boundary where *user*
// input arrives — unvalidated options, netlists of unknown provenance,
// stages invoked out of order — so its entry points return a Status with a
// readable message instead of aborting.
#pragma once

#include <string>
#include <utility>

namespace lrsizer::api {

enum class StatusCode {
  kOk = 0,
  /// The caller passed a value that can never be valid (bad option, size
  /// mismatch, unfinalized netlist).
  kInvalidArgument,
  /// The call itself is fine but not *now* (stage invoked out of order,
  /// result requested before size() ran).
  kFailedPrecondition,
  /// Cooperative cancellation via the session's stop token. A cancelled
  /// size() may still carry a usable partial result — see SizingSession.
  kCancelled,
};

class Status {
 public:
  /// Default-constructed Status is OK.
  Status() = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok", or "<code>: <message>" — what CLIs print.
  std::string to_string() const {
    if (ok()) return "ok";
    return std::string(code_name(code_)) + ": " + message_;
  }

  static const char* code_name(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "ok";
      case StatusCode::kInvalidArgument: return "invalid argument";
      case StatusCode::kFailedPrecondition: return "failed precondition";
      case StatusCode::kCancelled: return "cancelled";
    }
    return "unknown";
  }

 private:
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace lrsizer::api
