#include "api/session.hpp"

#include <algorithm>
#include <new>
#include <sstream>
#include <string>
#include <utility>

#include "api/options.hpp"
#include "fault/fault.hpp"
#include "layout/ordering.hpp"
#include "obs/trace.hpp"
#include "runtime/pool.hpp"
#include "sim/patterns.hpp"
#include "sim/similarity.hpp"
#include "util/assert.hpp"
#include "util/memtrack.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace lrsizer::api {

SizingSession::SizingSession(netlist::LogicNetlist netlist, core::FlowOptions options)
    : netlist_(std::move(netlist)), options_(std::move(options)) {}

SizingSession::~SizingSession() = default;

const char* SizingSession::stage_name(Stage stage) {
  switch (stage) {
    case Stage::kElaborate: return "elaborate";
    case Stage::kSimulateAndOrder: return "simulate_and_order";
    case Stage::kDeriveBounds: return "derive_bounds";
    case Stage::kSize: return "size";
    case Stage::kDone: return "done";
  }
  return "?";
}

Status SizingSession::begin_stage(Stage expected, const char* name) {
  if (next_ == Stage::kDone) {
    return Status::FailedPrecondition(
        std::string(name) +
        "() called on a finished session; SizingSession is one-shot — build a "
        "new session (optionally warm_start_from() this result) to re-size");
  }
  if (next_ != expected) {
    return Status::FailedPrecondition(std::string(name) +
                                      "() called out of order: the next stage is " +
                                      stage_name(next_) + "()");
  }
  if (Status st = validate_options(options_); !st.ok()) return st;
  if (stop_.stop_requested()) {
    cancelled_ = true;
    return Status::Cancelled(std::string("cancelled before ") + name + "()");
  }
  return Status::Ok();
}

Status SizingSession::warm_start_from(const core::FlowResult& prior) {
  if (next_ == Stage::kDone) {
    return Status::FailedPrecondition("warm_start_from() after size() has no effect");
  }
  if (warm_.has_value() || !warm_entries_.empty() || warm_multipliers_.has_value()) {
    return Status::FailedPrecondition("a warm start is already configured");
  }
  core::OgwsWarmStart warm = prior.ogws.warm;
  if (warm.sizes.empty()) warm.sizes = prior.ogws.sizes;
  if (warm.sizes.empty()) {
    return Status::InvalidArgument(
        "prior FlowResult carries no sizes to warm-start from");
  }
  warm_ = std::move(warm);
  return Status::Ok();
}

Status SizingSession::warm_start_sizes(
    std::vector<std::pair<std::int32_t, double>> entries) {
  if (next_ == Stage::kDone) {
    return Status::FailedPrecondition("warm_start_sizes() after size() has no effect");
  }
  if (warm_.has_value() || !warm_entries_.empty() || warm_multipliers_.has_value()) {
    return Status::FailedPrecondition("a warm start is already configured");
  }
  if (entries.empty()) {
    return Status::InvalidArgument("warm_start_sizes() got an empty entry list");
  }
  warm_entries_ = std::move(entries);
  return Status::Ok();
}

Status SizingSession::warm_start_eco(
    std::vector<std::pair<std::int32_t, double>> entries,
    core::OgwsWarmStart multipliers) {
  if (next_ == Stage::kDone) {
    return Status::FailedPrecondition("warm_start_eco() after size() has no effect");
  }
  if (warm_.has_value() || !warm_entries_.empty() || warm_multipliers_.has_value()) {
    return Status::FailedPrecondition("a warm start is already configured");
  }
  const bool have_multipliers = !multipliers.lambda.empty() ||
                                !multipliers.gamma_net.empty() ||
                                multipliers.beta != 0.0 || multipliers.gamma != 0.0;
  if (entries.empty() && !have_multipliers) {
    return Status::InvalidArgument(
        "warm_start_eco() got neither size entries nor multipliers — the "
        "whole netlist is dirty; run cold instead");
  }
  warm_entries_ = std::move(entries);
  if (have_multipliers) {
    multipliers.sizes.clear();  // by contract, sizes travel in `entries`
    warm_multipliers_ = std::move(multipliers);
  }
  return Status::Ok();
}

Status SizingSession::elaborate() {
  if (Status st = begin_stage(Stage::kElaborate, "elaborate"); !st.ok()) return st;
  if (!netlist_.finalized()) {
    return Status::InvalidArgument(
        "netlist is not finalized — call LogicNetlist::finalize() (or parse a "
        "complete .bench) before sizing");
  }
  obs::ScopedSpan span(trace_, "elaborate", "session");
  if (LRSIZER_FAULT_POINT("session.alloc")) {
    // Elaboration makes the session's big allocation (the RC circuit); this
    // is where a 10^6-node job would really see bad_alloc. runtime::run_job
    // catches it and turns the job into a failed outcome.
    throw std::bad_alloc();
  }
  elab_ = netlist::elaborate(netlist_, options_.tech, options_.elab);
  span.arg("nodes", static_cast<double>(elab_->circuit.num_nodes()));
  span.arg("edges", static_cast<double>(elab_->circuit.num_edges()));
  next_ = Stage::kSimulateAndOrder;
  return Status::Ok();
}

Status SizingSession::simulate_and_order() {
  if (Status st = begin_stage(Stage::kSimulateAndOrder, "simulate_and_order");
      !st.ok()) {
    return st;
  }
  const netlist::Circuit& circuit = elab_->circuit;
  util::WallTimer stage1_timer;
  obs::ScopedSpan span(trace_, "simulate_and_order", "session");

  const auto vectors = sim::random_vectors(
      static_cast<std::int32_t>(netlist_.primary_inputs().size()),
      options_.num_vectors, options_.pattern_seed);
  const sim::SimResult simulated = sim::simulate(netlist_, vectors, options_.sim);

  layout::ChannelAssignment channels = layout::assign_channels(
      circuit, elab_->net_of_node, netlist_, options_.channels);

  double cost_initial = 0.0;
  double cost_final = 0.0;
  std::vector<std::vector<netlist::NodeId>> orders;
  orders.reserve(channels.channels.size());
  for (const auto& tracks : channels.channels) {
    // Per-channel similarity matrix over the wires' nets.
    std::vector<std::int32_t> nets;
    nets.reserve(tracks.size());
    for (netlist::NodeId w : tracks) {
      nets.push_back(elab_->net_of_node[static_cast<std::size_t>(w)]);
    }
    const sim::SimilarityMatrix sim_matrix(simulated, nets);

    const auto n = static_cast<std::int32_t>(tracks.size());
    std::vector<double> weights(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
    for (std::int32_t a = 0; a < n; ++a) {
      for (std::int32_t b = 0; b < n; ++b) {
        weights[static_cast<std::size_t>(a) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(b)] = sim_matrix.miller_weight(a, b);
      }
    }
    const layout::DenseWeights view(n, std::move(weights));

    std::vector<std::int32_t> identity(static_cast<std::size_t>(n));
    for (std::int32_t i = 0; i < n; ++i) identity[static_cast<std::size_t>(i)] = i;
    cost_initial += layout::ordering_cost(view, identity);

    std::vector<std::int32_t> order =
        options_.use_woss ? layout::woss_ordering(view) : identity;
    cost_final += layout::ordering_cost(view, order);

    std::vector<netlist::NodeId> track_order(static_cast<std::size_t>(n));
    for (std::int32_t i = 0; i < n; ++i) {
      track_order[static_cast<std::size_t>(i)] =
          tracks[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])];
    }
    orders.push_back(std::move(track_order));
  }

  // Miller weights for the final adjacency (constants folded into ĉ_ij).
  layout::MillerFn miller;
  if (options_.neighbors.fold_miller) {
    miller = [&](netlist::NodeId a, netlist::NodeId b) {
      const std::vector<std::int32_t> nets = {
          elab_->net_of_node[static_cast<std::size_t>(a)],
          elab_->net_of_node[static_cast<std::size_t>(b)]};
      const sim::SimilarityMatrix m(simulated, nets);
      return m.miller_weight(0, 1);
    };
  }
  coupling_ = layout::build_coupling_set(circuit, orders, options_.neighbors, miller);

  ordering_cost_initial_ = cost_initial;
  ordering_cost_woss_ = cost_final;
  stage1_seconds_ = stage1_timer.seconds();
  span.arg("channels", static_cast<double>(channels.channels.size()));
  span.arg("pairs", static_cast<double>(coupling_->pairs().size()));
  next_ = Stage::kDeriveBounds;
  return Status::Ok();
}

Status SizingSession::derive_bounds() {
  if (Status st = begin_stage(Stage::kDeriveBounds, "derive_bounds"); !st.ok()) {
    return st;
  }
  netlist::Circuit& circuit = elab_->circuit;
  util::WallTimer timer;
  obs::ScopedSpan span(trace_, "derive_bounds", "session");
  circuit.set_uniform_size(options_.initial_size);
  init_metrics_ = timing::compute_metrics(circuit, *coupling_, circuit.sizes(),
                                          options_.ogws.lrs.mode);
  bounds_ = core::derive_bounds(circuit, *coupling_, circuit.sizes(),
                                options_.ogws.lrs.mode, options_.bound_factors);
  stage2_seconds_ = timer.seconds();
  if (bounds_.delay_s <= 0.0 || bounds_.cap_f <= 0.0 || bounds_.noise_f <= 0.0) {
    std::ostringstream out;
    out << "derived bounds are degenerate (A0 = " << bounds_.delay_s
        << " s, P0 = " << bounds_.cap_f << " F, X0 = " << bounds_.noise_f
        << " F) — the initial circuit has a zero metric; check the channel/"
           "coupling options and bound factors";
    return Status::InvalidArgument(out.str());
  }
  next_ = Stage::kSize;
  return Status::Ok();
}

Status SizingSession::size() {
  if (Status st = begin_stage(Stage::kSize, "size"); !st.ok()) return st;
  netlist::Circuit& circuit = elab_->circuit;

  // Materialize a sparse warm start against the now-known circuit.
  if (!warm_entries_.empty() || warm_multipliers_.has_value()) {
    core::OgwsWarmStart warm;
    warm.sizes = circuit.sizes();
    for (const auto& [node, size] : warm_entries_) {
      if (node < circuit.first_component() || node >= circuit.end_component()) {
        std::ostringstream out;
        out << "warm-start size entry names node " << node
            << ", outside the elaborated circuit's component range ["
            << circuit.first_component() << ", " << circuit.end_component() << ")";
        return Status::InvalidArgument(out.str());
      }
      if (!(size > 0.0)) {
        std::ostringstream out;
        out << "warm-start size for node " << node << " must be > 0 (got " << size
            << ")";
        return Status::InvalidArgument(out.str());
      }
      warm.sizes[static_cast<std::size_t>(node)] =
          std::clamp(size, circuit.lower_bound(node), circuit.upper_bound(node));
    }
    if (warm_multipliers_.has_value()) {
      // warm_start_eco: graft the base run's multiplier state onto the
      // materialized sizes (lengths are validated just below).
      warm.lambda = std::move(warm_multipliers_->lambda);
      warm.beta = warm_multipliers_->beta;
      warm.gamma = warm_multipliers_->gamma;
      warm.gamma_net = std::move(warm_multipliers_->gamma_net);
      warm_multipliers_.reset();
    }
    warm_ = std::move(warm);
    warm_entries_.clear();
  }
  if (warm_.has_value()) {
    if (warm_->sizes.size() != static_cast<std::size_t>(circuit.num_nodes())) {
      std::ostringstream out;
      out << "warm-start sizes carry " << warm_->sizes.size()
          << " entries but the elaborated circuit has " << circuit.num_nodes()
          << " nodes — was the prior result produced from the same netlist and "
             "elaboration options?";
      return Status::InvalidArgument(out.str());
    }
    if (!warm_->lambda.empty() &&
        warm_->lambda.size() != static_cast<std::size_t>(circuit.num_edges())) {
      std::ostringstream out;
      out << "warm-start multipliers carry " << warm_->lambda.size()
          << " entries but the elaborated circuit has " << circuit.num_edges()
          << " edges — was the prior result produced from the same netlist and "
             "elaboration options?";
      return Status::InvalidArgument(out.str());
    }
    if (!warm_->gamma_net.empty() &&
        warm_->gamma_net.size() != static_cast<std::size_t>(circuit.num_nodes())) {
      std::ostringstream out;
      out << "warm-start per-net multipliers carry " << warm_->gamma_net.size()
          << " entries but the elaborated circuit has " << circuit.num_nodes()
          << " nodes — was the prior result produced from the same netlist and "
             "elaboration options?";
      return Status::InvalidArgument(out.str());
    }
  }

  obs::ScopedSpan span(trace_, "size", "session");
  core::OgwsControl control;
  control.observer = observer_;
  control.stop = stop_;
  control.capture_warm_start = capture_warm_start_;
  control.trace = trace_;
  if (warm_.has_value()) control.warm_start = &*warm_;

  // Intra-job parallelism: a caller-supplied executor wins; otherwise the
  // session runs its own kernel team for the duration of this stage when
  // options.threads asks for more than serial. Either way the result is
  // bit-identical to threads = 1.
  std::unique_ptr<runtime::KernelTeam> team;
  control.executor = external_executor_;
  if (control.executor == nullptr && options_.threads != 1) {
    team = std::make_unique<runtime::KernelTeam>(options_.threads);
    control.executor = team.get();
  }

  util::WallTimer stage2_timer;
  core::OgwsResult ogws =
      core::run_ogws(circuit, *coupling_, bounds_, options_.ogws, control);
  span.arg("iterations", static_cast<double>(ogws.iterations));
  span.arg("converged", ogws.converged ? 1.0 : 0.0);
  circuit.mutable_sizes() = ogws.sizes;
  const timing::Metrics final_metrics = timing::compute_metrics(
      circuit, *coupling_, circuit.sizes(), options_.ogws.lrs.mode);
  stage2_seconds_ += stage2_timer.seconds();

  core::FlowResult result{std::move(elab_->circuit),
                          std::move(*coupling_),
                          bounds_,
                          init_metrics_,
                          final_metrics,
                          std::move(ogws),
                          ordering_cost_initial_,
                          ordering_cost_woss_,
                          stage1_seconds_,
                          stage2_seconds_,
                          0,
                          {}};
  result.net_of_node = std::move(elab_->net_of_node);

  util::MemoryTracker tracker;
  result.circuit.account_memory(tracker);
  result.coupling.account_memory(tracker);
  tracker.add("ogws/workspace", result.ogws.workspace_bytes);
  result.memory_bytes = tracker.total_bytes();

  result_ = std::move(result);
  elab_.reset();
  coupling_.reset();
  next_ = Stage::kDone;
  if (result_->ogws.cancelled) {
    cancelled_ = true;
    return Status::Cancelled("sizing cancelled after " +
                             std::to_string(result_->ogws.iterations) +
                             " iteration(s); partial result available");
  }
  return Status::Ok();
}

Status SizingSession::run_all() {
  while (next_ != Stage::kDone) {
    Status status;
    switch (next_) {
      case Stage::kElaborate: status = elaborate(); break;
      case Stage::kSimulateAndOrder: status = simulate_and_order(); break;
      case Stage::kDeriveBounds: status = derive_bounds(); break;
      case Stage::kSize: status = size(); break;
      case Stage::kDone: break;
    }
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

const core::FlowResult& SizingSession::result() const {
  LRSIZER_ASSERT_MSG(result_.has_value(),
                     "SizingSession::result() before size() produced one");
  return *result_;
}

core::FlowResult SizingSession::take_result() {
  LRSIZER_ASSERT_MSG(result_.has_value(),
                     "SizingSession::take_result() before size() produced one");
  core::FlowResult out = std::move(*result_);
  result_.reset();
  return out;
}

core::FlowSummary SizingSession::summary() const {
  return core::summarize_flow(result());
}

netlist::LogicNetlist SizingSession::release_netlist() {
  return std::move(netlist_);
}

}  // namespace lrsizer::api

namespace lrsizer::core {

FlowResult run_two_stage_flow(const netlist::LogicNetlist& logic,
                              const FlowOptions& options) {
  // Compatibility shim over the staged session (declared in core/flow.hpp,
  // defined here so core/ never includes upward into the api layer). It
  // preserves the historical contract — bad input dies loudly, see
  // util/assert.hpp — by promoting any stage Status to a checked-assert
  // failure. The session owns its inputs, so this copies the netlist once:
  // one O(V+E) copy against the hundreds of O(V+E) optimizer passes a run
  // performs, kept in preference to a lifetime-sensitive borrowing
  // constructor.
  api::SizingSession session(logic, options);
  const api::Status status = session.run_all();
  LRSIZER_ASSERT_MSG(status.ok(), status.to_string().c_str());
  return session.take_result();
}

}  // namespace lrsizer::core
