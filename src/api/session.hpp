// SizingSession — the staged flow API.
//
// The paper's flow is explicitly staged (§1): elaboration → simulation/WOSS
// ordering → bounds → LR-based OGWS. core::run_two_stage_flow() runs all of
// it in one opaque call; SizingSession exposes the same pipeline as four
// individually runnable stages with observable progress, cooperative
// cancellation and warm-starting:
//
//   api::SizingSession session(netlist, options);
//   session.set_observer([](const core::OgwsIterate& it) { ... });  // progress
//   session.set_stop_token(source.get_token());                    // Ctrl-C
//   api::Status st = session.run_all();          // or stage-by-stage:
//   //   session.elaborate();
//   //   session.simulate_and_order();
//   //   session.derive_bounds();
//   //   session.size();
//   core::FlowSummary summary = session.summary();
//
// Contracts:
//   * Stages run in order, each exactly once; out-of-order calls return
//     kFailedPrecondition and leave the session untouched.
//   * A session runs its pipeline once (one-shot); build a new session to
//     re-size, seeding it with warm_start_from() to skip converged work.
//   * Results are bit-identical to run_two_stage_flow() with the same
//     netlist and options — the free function is a shim over this class.
//   * Cancellation: every stage checks the stop token on entry (returning
//     kCancelled without running), and size() additionally polls it once
//     per OGWS iteration. A size() interrupted mid-OGWS still finishes its
//     bookkeeping — final metrics of the best iterate so far, memory
//     accounting — so summary()/result() describe a usable partial
//     solution; its Status is kCancelled and cancelled() turns true.
//   * The session is not thread-safe; run one session per thread (the batch
//     runtime does exactly that). request_stop() on the associated
//     stop_source may come from any thread or a signal handler.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stop_token>
#include <utility>
#include <vector>

#include "api/status.hpp"
#include "core/flow.hpp"

namespace lrsizer::util {
class Executor;
}

namespace lrsizer::obs {
class TraceSession;
}

namespace lrsizer::api {

/// Per-iteration progress callback; receives OGWS's iteration summary
/// (iteration number, area, dual, certificate gap, max violation, timing).
using IterationObserver = std::function<void(const core::OgwsIterate&)>;

class SizingSession {
 public:
  /// Pipeline position: the next stage that run_all()/the stage calls would
  /// execute. kDone after size() (or run_all()) completed.
  enum class Stage { kElaborate, kSimulateAndOrder, kDeriveBounds, kSize, kDone };

  /// Takes ownership of the netlist. Options are validated lazily by the
  /// first stage call (so a default-constructed-then-tweaked session still
  /// reports readable errors instead of asserting).
  explicit SizingSession(netlist::LogicNetlist netlist,
                         core::FlowOptions options = core::FlowOptions{});
  ~SizingSession();

  SizingSession(SizingSession&&) = default;
  SizingSession& operator=(SizingSession&&) = default;

  // ---- controls (set any time before size()) -------------------------------

  /// Observer for every completed OGWS iteration; invoked on the thread
  /// running size(). Pass nullptr to clear.
  void set_observer(IterationObserver observer) { observer_ = std::move(observer); }

  /// Cooperative cancellation token; see the cancellation contract above.
  void set_stop_token(std::stop_token token) { stop_ = std::move(token); }

  /// Kernel executor for the sizing stage's level-parallel passes (borrowed;
  /// must outlive size()). Overrides the session's own team: without this,
  /// size() spins up a runtime::KernelTeam of options.threads when
  /// options.threads != 1. Results are bit-identical with any executor.
  void set_executor(util::Executor* executor) { external_executor_ = executor; }

  /// Flow tracing (borrowed; must outlive the last stage call): each stage
  /// records one span, and size() additionally records one span per OGWS
  /// iteration (dual, max KKT violation, nodes moved) and per LRS pass —
  /// Chrome trace-event JSON via obs::TraceSession::dump_json(). nullptr
  /// (the default) disables tracing; the FlowResult is bit-identical either
  /// way (the hooks only read optimizer state).
  void set_trace(obs::TraceSession* trace) { trace_ = trace; }

  /// Record the warm-start snapshot (`result().ogws.warm`) so this run can
  /// seed warm_start_from() later. On by default — session results are
  /// restart seeds by contract; fire-and-forget harnesses that never reuse
  /// a result (e.g. the paper-reproduction benches) turn it off to skip the
  /// O(edges) multiplier copy per dual-improving iteration.
  void set_capture_warm_start(bool on) { capture_warm_start_ = on; }

  /// Seed the sizing stage from a prior run's result: the prior sizes become
  /// the incumbent iterate and the prior best-dual multipliers the starting
  /// point, so identical options re-converge in one or two iterations and
  /// tweaked options start from the converged neighborhood. The prior result
  /// must come from the same netlist/elaboration (node/edge counts are
  /// validated when size() runs). Fails once size() has run.
  Status warm_start_from(const core::FlowResult& prior);

  /// Warm-start from sparse per-node sizes (e.g. `# size` annotations of a
  /// sized .bench written by the CLI): unlisted components keep the
  /// initial size. Entries are (circuit NodeId, size); ids are validated
  /// against the elaborated circuit when size() runs.
  Status warm_start_sizes(std::vector<std::pair<std::int32_t, double>> entries);

  /// ECO warm start (docs/ECO.md): sparse per-node sizes for the *clean*
  /// region of an edited netlist — built by eco::seed_from_index from a
  /// cached base run — plus, optionally, the base run's multiplier state
  /// (`multipliers.sizes` is ignored; pass it empty). The multipliers are
  /// only valid when the revised circuit keeps the base's node/edge counts
  /// (e.g. op-only edits); lengths are validated when size() runs. Fails if
  /// any warm start is already configured, like the other two seeders.
  Status warm_start_eco(std::vector<std::pair<std::int32_t, double>> entries,
                        core::OgwsWarmStart multipliers);

  // ---- stages --------------------------------------------------------------

  /// Stage 0: logic netlist → circuit graph.
  Status elaborate();
  /// Stage 1: logic simulation → switching similarity → per-channel WOSS
  /// track ordering → coupling pair sets N(i)/I(i).
  Status simulate_and_order();
  /// Stage 2a: set the initial sizes, record the initial metrics, derive
  /// the A0/P0/X0 bounds.
  Status derive_bounds();
  /// Stage 2b: OGWS (LR sizing), final metrics, memory accounting.
  Status size();
  /// Run every remaining stage in order; stops at the first non-OK status.
  Status run_all();

  // ---- state ---------------------------------------------------------------

  Stage next_stage() const { return next_; }
  bool finished() const { return next_ == Stage::kDone; }
  /// True once the stop token interrupted the pipeline (at a stage boundary
  /// or mid-OGWS).
  bool cancelled() const { return cancelled_; }
  /// True once size() ran — even when it was cancelled mid-OGWS, in which
  /// case result()/summary() describe the best partial solution.
  bool has_result() const { return result_.has_value(); }

  /// The assembled FlowResult; valid when has_result().
  const core::FlowResult& result() const;
  /// Move the FlowResult out (the session is spent afterwards).
  core::FlowResult take_result();
  /// Flat serializable snapshot of the result; valid when has_result().
  core::FlowSummary summary() const;
  /// Hand the input netlist back (e.g. for serializing sized outputs). The
  /// session is spent afterwards.
  netlist::LogicNetlist release_netlist();

  const core::FlowOptions& options() const { return options_; }

 private:
  /// Common stage prologue: options valid, pipeline at `expected`, not
  /// stopped. On success the caller runs the stage body.
  Status begin_stage(Stage expected, const char* name);
  static const char* stage_name(Stage stage);

  netlist::LogicNetlist netlist_;
  core::FlowOptions options_;
  Stage next_ = Stage::kElaborate;
  bool cancelled_ = false;

  IterationObserver observer_;
  std::stop_token stop_;
  util::Executor* external_executor_ = nullptr;
  obs::TraceSession* trace_ = nullptr;
  bool capture_warm_start_ = true;
  std::optional<core::OgwsWarmStart> warm_;
  std::vector<std::pair<std::int32_t, double>> warm_entries_;
  /// Multiplier state accompanying warm_entries_ (warm_start_eco only);
  /// merged into the materialized warm start when size() runs.
  std::optional<core::OgwsWarmStart> warm_multipliers_;

  // Intermediate state, populated stage by stage and moved into the final
  // FlowResult by size().
  std::optional<netlist::ElabResult> elab_;
  std::optional<layout::CouplingSet> coupling_;
  double ordering_cost_initial_ = 0.0;
  double ordering_cost_woss_ = 0.0;
  double stage1_seconds_ = 0.0;
  /// Accumulated across derive_bounds() and size() (the monolithic flow's
  /// stage-2 timer covered both).
  double stage2_seconds_ = 0.0;
  timing::Metrics init_metrics_;
  core::Bounds bounds_;
  std::optional<core::FlowResult> result_;
};

}  // namespace lrsizer::api
