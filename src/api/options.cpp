#include "api/options.hpp"

#include <sstream>

namespace lrsizer::api {

namespace {

/// "tech.min_size must be > 0 (got -1)" — every check reads like this.
template <typename T>
Status invalid(const char* field, const char* constraint, T got) {
  std::ostringstream out;
  out << field << " must be " << constraint << " (got " << got << ")";
  return Status::InvalidArgument(out.str());
}

Status check_tech(const netlist::TechParams& tech) {
  if (tech.gate_unit_res <= 0.0)
    return invalid("tech.gate_unit_res", "> 0", tech.gate_unit_res);
  if (tech.gate_unit_cap <= 0.0)
    return invalid("tech.gate_unit_cap", "> 0", tech.gate_unit_cap);
  if (tech.wire_res_per_um <= 0.0)
    return invalid("tech.wire_res_per_um", "> 0", tech.wire_res_per_um);
  if (tech.wire_cap_per_um <= 0.0)
    return invalid("tech.wire_cap_per_um", "> 0", tech.wire_cap_per_um);
  if (tech.wire_fringe_per_um < 0.0)
    return invalid("tech.wire_fringe_per_um", ">= 0", tech.wire_fringe_per_um);
  if (tech.supply_voltage <= 0.0)
    return invalid("tech.supply_voltage", "> 0", tech.supply_voltage);
  if (tech.frequency <= 0.0) return invalid("tech.frequency", "> 0", tech.frequency);
  if (tech.min_size <= 0.0) return invalid("tech.min_size", "> 0", tech.min_size);
  if (tech.max_size < tech.min_size) {
    std::ostringstream out;
    out << "tech.max_size (" << tech.max_size << ") must be >= tech.min_size ("
        << tech.min_size << "): the size box [L, U] would be empty";
    return Status::InvalidArgument(out.str());
  }
  if (tech.gate_area_per_size <= 0.0)
    return invalid("tech.gate_area_per_size", "> 0", tech.gate_area_per_size);
  if (tech.wire_area_per_size < 0.0)
    return invalid("tech.wire_area_per_size", ">= 0", tech.wire_area_per_size);
  if (tech.driver_res <= 0.0) return invalid("tech.driver_res", "> 0", tech.driver_res);
  if (tech.output_load <= 0.0)
    return invalid("tech.output_load", "> 0", tech.output_load);
  return Status::Ok();
}

Status check_elab(const netlist::ElabOptions& elab) {
  if (elab.min_wire_length <= 0.0)
    return invalid("elab.min_wire_length", "> 0", elab.min_wire_length);
  if (elab.max_wire_length < elab.min_wire_length) {
    std::ostringstream out;
    out << "elab.max_wire_length (" << elab.max_wire_length
        << ") must be >= elab.min_wire_length (" << elab.min_wire_length << ")";
    return Status::InvalidArgument(out.str());
  }
  if (elab.max_star_fanout < 1)
    return invalid("elab.max_star_fanout", ">= 1", elab.max_star_fanout);
  if (elab.segments_per_wire < 1)
    return invalid("elab.segments_per_wire", ">= 1", elab.segments_per_wire);
  return Status::Ok();
}

Status check_ogws(const core::OgwsOptions& ogws) {
  if (ogws.max_iterations < 1)
    return invalid("ogws.max_iterations", ">= 1", ogws.max_iterations);
  if (ogws.gap_tol <= 0.0) return invalid("ogws.gap_tol", "> 0", ogws.gap_tol);
  if (ogws.feas_tol < 0.0) return invalid("ogws.feas_tol", ">= 0", ogws.feas_tol);
  if (ogws.step0 <= 0.0) return invalid("ogws.step0", "> 0", ogws.step0);
  if (ogws.lrs.max_passes < 1)
    return invalid("ogws.lrs.max_passes", ">= 1", ogws.lrs.max_passes);
  if (ogws.lrs.tol <= 0.0) return invalid("ogws.lrs.tol", "> 0", ogws.lrs.tol);
  if (ogws.lrs.worklist_eps < 0.0 ||
      (ogws.lrs.worklist_eps > 0.0 && ogws.lrs.worklist_eps >= ogws.lrs.tol)) {
    return invalid("ogws.lrs.worklist_eps",
                   "0 (auto) or in (0, lrs.tol) — skipped nodes must stay "
                   "stationary within the fixpoint tolerance",
                   ogws.lrs.worklist_eps);
  }
  return Status::Ok();
}

}  // namespace

Status validate_options(const core::FlowOptions& options) {
  if (Status st = check_tech(options.tech); !st.ok()) return st;
  if (Status st = check_elab(options.elab); !st.ok()) return st;
  if (Status st = check_ogws(options.ogws); !st.ok()) return st;

  if (options.num_vectors < 1)
    return invalid("num_vectors", ">= 1", options.num_vectors);
  if (options.sim.vector_period < 1)
    return invalid("sim.vector_period", ">= 1", options.sim.vector_period);
  if (options.sim.gate_delay < 0)
    return invalid("sim.gate_delay", ">= 0", options.sim.gate_delay);
  if (options.sim.gate_delay >= options.sim.vector_period) {
    std::ostringstream out;
    out << "sim.gate_delay (" << options.sim.gate_delay
        << ") must be < sim.vector_period (" << options.sim.vector_period
        << "): a gate's transition must land inside its vector window";
    return Status::InvalidArgument(out.str());
  }
  if (options.channels.max_channel_width < 2)
    return invalid("channels.max_channel_width", ">= 2 (tracks only couple within a channel)",
                   options.channels.max_channel_width);
  if (options.neighbors.pitch_um <= 0.0)
    return invalid("neighbors.pitch_um", "> 0", options.neighbors.pitch_um);
  if (options.neighbors.fringe_per_um < 0.0)
    return invalid("neighbors.fringe_per_um", ">= 0", options.neighbors.fringe_per_um);

  const core::BoundFactors& factors = options.bound_factors;
  if (factors.delay <= 0.0)
    return invalid("bound_factors.delay", "> 0 (A0 = delay x initial delay)",
                   factors.delay);
  if (factors.power <= 0.0)
    return invalid("bound_factors.power", "> 0 (P0 = power x initial cap)",
                   factors.power);
  if (factors.noise <= 0.0)
    return invalid("bound_factors.noise", "> 0 (X0 = noise x initial noise)",
                   factors.noise);
  if (factors.per_net_noise < 0.0)
    return invalid("bound_factors.per_net_noise", ">= 0 (0 disables per-net bounds)",
                   factors.per_net_noise);

  if (options.threads < 0)
    return invalid("threads", ">= 0 (0 = hardware concurrency, 1 = serial)",
                   options.threads);
  if (options.initial_size <= 0.0)
    return invalid("initial_size", "> 0", options.initial_size);
  if (options.initial_size < options.tech.min_size ||
      options.initial_size > options.tech.max_size) {
    std::ostringstream out;
    out << "initial_size (" << options.initial_size
        << ") must lie inside the tech size box [" << options.tech.min_size << ", "
        << options.tech.max_size << "]";
    return Status::InvalidArgument(out.str());
  }
  return Status::Ok();
}

}  // namespace lrsizer::api
