// FlowOptions validation + builder.
//
// core::FlowOptions is a plain aggregate that the core flow trusts blindly
// (inconsistent values surface as asserts deep inside derive_bounds or
// run_ogws). The session API validates up front: validate_options() checks
// every tech/elab/sim/bound/ogws parameter and names the offending field in
// its message; FlowOptionsBuilder is the fluent way to assemble options that
// ends in exactly that check.
#pragma once

#include <cstdint>

#include "api/status.hpp"
#include "core/flow.hpp"

namespace lrsizer::api {

/// Full up-front consistency check of a FlowOptions bundle. Returns OK for
/// everything the flow can actually run; otherwise kInvalidArgument with a
/// message naming the field, the offending value, and the constraint.
Status validate_options(const core::FlowOptions& options);

/// Fluent assembly of a validated core::FlowOptions. Every setter returns
/// *this; build() runs validate_options() and only writes `out` on success.
///
///   core::FlowOptions options;
///   api::Status st = api::FlowOptionsBuilder()
///                        .vectors(64)
///                        .noise_bound(0.12)
///                        .build(options);
class FlowOptionsBuilder {
 public:
  FlowOptionsBuilder() = default;
  /// Start from an existing bundle instead of the defaults.
  explicit FlowOptionsBuilder(core::FlowOptions base) : options_(std::move(base)) {}

  FlowOptionsBuilder& tech(const netlist::TechParams& tech) {
    options_.tech = tech;
    return *this;
  }
  FlowOptionsBuilder& elab(const netlist::ElabOptions& elab) {
    options_.elab = elab;
    return *this;
  }
  FlowOptionsBuilder& sim(const sim::SimOptions& sim) {
    options_.sim = sim;
    return *this;
  }
  FlowOptionsBuilder& vectors(std::int32_t num_vectors) {
    options_.num_vectors = num_vectors;
    return *this;
  }
  FlowOptionsBuilder& pattern_seed(std::uint64_t seed) {
    options_.pattern_seed = seed;
    return *this;
  }
  FlowOptionsBuilder& channels(const layout::ChannelOptions& channels) {
    options_.channels = channels;
    return *this;
  }
  FlowOptionsBuilder& neighbors(const layout::NeighborOptions& neighbors) {
    options_.neighbors = neighbors;
    return *this;
  }
  FlowOptionsBuilder& use_woss(bool on) {
    options_.use_woss = on;
    return *this;
  }
  FlowOptionsBuilder& bound_factors(const core::BoundFactors& factors) {
    options_.bound_factors = factors;
    return *this;
  }
  FlowOptionsBuilder& delay_bound(double factor) {
    options_.bound_factors.delay = factor;
    return *this;
  }
  FlowOptionsBuilder& power_bound(double factor) {
    options_.bound_factors.power = factor;
    return *this;
  }
  FlowOptionsBuilder& noise_bound(double factor) {
    options_.bound_factors.noise = factor;
    return *this;
  }
  FlowOptionsBuilder& per_net_noise_bound(double factor) {
    options_.bound_factors.per_net_noise = factor;
    return *this;
  }
  FlowOptionsBuilder& ogws(const core::OgwsOptions& ogws) {
    options_.ogws = ogws;
    return *this;
  }
  /// OGWS iteration cap (shorthand for rebuilding the whole ogws bundle —
  /// the one solver knob remote jobs commonly tweak; serve/protocol.cpp).
  FlowOptionsBuilder& max_iterations(int iterations) {
    options_.ogws.max_iterations = iterations;
    return *this;
  }
  FlowOptionsBuilder& initial_size(double size) {
    options_.initial_size = size;
    return *this;
  }
  /// Intra-job kernel threads (1 = serial, 0 = hardware concurrency);
  /// bit-identical results at any value.
  FlowOptionsBuilder& threads(int threads) {
    options_.threads = threads;
    return *this;
  }
  /// LRS sweep strategy (dense = paper-exact default; worklist = frontier-
  /// driven incremental sweeps, tolerance-equivalent but not bit-identical
  /// to dense — see docs/ARCHITECTURE.md §Parallel kernels).
  FlowOptionsBuilder& sweep_mode(core::SweepMode mode) {
    options_.ogws.lrs.sweep = mode;
    return *this;
  }
  /// Worklist dirtiness threshold (0 = auto tol/8; must stay below lrs.tol).
  FlowOptionsBuilder& worklist_eps(double eps) {
    options_.ogws.lrs.worklist_eps = eps;
    return *this;
  }

  /// Current (possibly invalid) state, for inspection.
  const core::FlowOptions& peek() const { return options_; }

  /// Validate and, on success, write the assembled options into `out`.
  Status build(core::FlowOptions& out) const {
    Status status = validate_options(options_);
    if (status.ok()) out = options_;
    return status;
  }

 private:
  core::FlowOptions options_;
};

}  // namespace lrsizer::api
