#include "sim/patterns.hpp"

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace lrsizer::sim {

std::vector<std::vector<int>> random_vectors(std::int32_t num_inputs,
                                             std::int32_t num_vectors,
                                             std::uint64_t seed) {
  LRSIZER_ASSERT(num_inputs > 0 && num_vectors > 0);
  util::Rng rng(seed);
  std::vector<std::vector<int>> vectors(static_cast<std::size_t>(num_vectors));
  for (auto& row : vectors) {
    row.resize(static_cast<std::size_t>(num_inputs));
    for (auto& bit : row) bit = rng.bernoulli(0.5) ? 1 : 0;
  }
  return vectors;
}

std::vector<std::vector<int>> biased_vectors(std::int32_t num_inputs,
                                             std::int32_t num_vectors,
                                             double toggle_probability,
                                             std::uint64_t seed) {
  LRSIZER_ASSERT(num_inputs > 0 && num_vectors > 0);
  LRSIZER_ASSERT(toggle_probability >= 0.0 && toggle_probability <= 1.0);
  util::Rng rng(seed);
  std::vector<std::vector<int>> vectors(static_cast<std::size_t>(num_vectors));
  std::vector<int> state(static_cast<std::size_t>(num_inputs));
  for (auto& bit : state) bit = rng.bernoulli(0.5) ? 1 : 0;
  for (auto& row : vectors) {
    for (auto& bit : state) {
      if (rng.bernoulli(toggle_probability)) bit = 1 - bit;
    }
    row = state;
  }
  return vectors;
}

}  // namespace lrsizer::sim
