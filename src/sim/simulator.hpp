// Event-driven unit/level-delay logic simulator.
//
// Applies a sequence of input vectors to a LogicNetlist (one vector every
// `vector_period` ticks) and records a Waveform per net. Gate propagation
// uses a transport delay of `gate_delay` ticks, so reconvergent paths create
// realistic glitching — exactly the behavior the similarity metric should
// see. Events that produce no value change are suppressed.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/logic_netlist.hpp"
#include "sim/waveform.hpp"

namespace lrsizer::sim {

struct SimOptions {
  SimTime vector_period = 64;  ///< ticks between input vectors
  SimTime gate_delay = 1;      ///< transport delay per gate
};

struct SimResult {
  /// One waveform per logic gate index (nets identified with their driver).
  std::vector<Waveform> waveforms;
  /// T_D: end of the simulated window = num_vectors * vector_period.
  SimTime horizon = 0;
  std::int64_t total_events = 0;
};

/// Simulate `vectors` (each sized to the netlist's primary-input count).
/// The netlist is settled to the first vector before t=0, so waveforms
/// start in a consistent state.
SimResult simulate(const netlist::LogicNetlist& netlist,
                   const std::vector<std::vector<int>>& vectors,
                   const SimOptions& options = SimOptions{});

}  // namespace lrsizer::sim
