// Binary signal waveforms f(i,t) ∈ {-1, +1} (paper §3.2).
//
// A waveform is an initial logic value plus a sorted list of toggle times.
// The similarity integral (1/T)∫ f_i f_j dt is computed exactly by a merged
// sweep over the two transition lists — no time discretization.
#pragma once

#include <cstdint>
#include <vector>

namespace lrsizer::sim {

/// Simulation time in arbitrary integer ticks (one input vector per
/// `period` ticks; gate delays are small integers).
using SimTime = std::int64_t;

class Waveform {
 public:
  explicit Waveform(int initial_value = 0) : initial_(initial_value) {}

  int initial_value() const { return initial_; }
  void set_initial_value(int v) { initial_ = v; }

  /// Record a toggle at time t. Times must be appended non-decreasing; two
  /// toggles at the same time cancel (glitch suppression at zero width).
  void add_toggle(SimTime t);

  const std::vector<SimTime>& toggles() const { return toggles_; }

  /// Logic value (0/1) at time t (value holds in [toggle_k, toggle_{k+1})).
  int value_at(SimTime t) const;

  /// Number of transitions in [0, horizon).
  std::int64_t transition_count(SimTime horizon) const;

  /// Paper §3.2: similarity(a,b) = (1/T)∫₀ᵀ f_a(t)·f_b(t) dt with f = ±1.
  /// Result lies in [-1, 1].
  static double similarity(const Waveform& a, const Waveform& b, SimTime horizon);

 private:
  int initial_;
  std::vector<SimTime> toggles_;
};

}  // namespace lrsizer::sim
