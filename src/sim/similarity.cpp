#include "sim/similarity.hpp"

#include "util/assert.hpp"

namespace lrsizer::sim {

namespace {

std::vector<double> pairwise(const std::vector<const Waveform*>& w, SimTime horizon) {
  LRSIZER_ASSERT(horizon > 0);
  const auto n = w.size();
  std::vector<double> values(n * n, 1.0);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      const double s = Waveform::similarity(*w[a], *w[b], horizon);
      values[a * n + b] = s;
      values[b * n + a] = s;
    }
  }
  return values;
}

}  // namespace

SimilarityMatrix::SimilarityMatrix(const SimResult& sim,
                                   const std::vector<std::int32_t>& nets)
    : n_(static_cast<std::int32_t>(nets.size())) {
  std::vector<const Waveform*> w;
  w.reserve(nets.size());
  for (std::int32_t net : nets) {
    w.push_back(&sim.waveforms[static_cast<std::size_t>(net)]);
  }
  values_ = pairwise(w, sim.horizon);
}

SimilarityMatrix::SimilarityMatrix(const std::vector<Waveform>& waveforms,
                                   SimTime horizon)
    : n_(static_cast<std::int32_t>(waveforms.size())) {
  std::vector<const Waveform*> w;
  w.reserve(waveforms.size());
  for (const auto& wf : waveforms) w.push_back(&wf);
  values_ = pairwise(w, horizon);
}

}  // namespace lrsizer::sim
