// Switching similarity (paper §3.2) and the derived Miller weight.
//
//   similarity(i,j) = (1/T_D) ∫ f(i,t) f(j,t) dt ∈ [-1, 1]
//   miller_weight(i,j) = 1 - similarity(i,j) ∈ [0, 2]
//
// miller_weight is the "effective loading" factor the WOSS ordering
// minimizes: 0 for perfectly correlated neighbors (anti-Miller), 2 for
// perfectly anti-correlated neighbors (full Miller effect).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/waveform.hpp"

namespace lrsizer::sim {

/// Dense symmetric similarity matrix over a set of nets.
class SimilarityMatrix {
 public:
  /// Compute pairwise similarities of `nets` (indices into sim.waveforms).
  SimilarityMatrix(const SimResult& sim, const std::vector<std::int32_t>& nets);

  /// Pairwise similarities of explicitly given waveforms over [0, horizon).
  SimilarityMatrix(const std::vector<Waveform>& waveforms, SimTime horizon);

  std::int32_t size() const { return n_; }

  /// similarity between the a-th and b-th net of the constructor list.
  double at(std::int32_t a, std::int32_t b) const {
    return values_[static_cast<std::size_t>(a) * static_cast<std::size_t>(n_) +
                   static_cast<std::size_t>(b)];
  }

  double miller_weight(std::int32_t a, std::int32_t b) const { return 1.0 - at(a, b); }

 private:
  std::int32_t n_;
  std::vector<double> values_;
};

}  // namespace lrsizer::sim
