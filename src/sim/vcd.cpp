#include "sim/vcd.hpp"

#include <map>
#include <sstream>

#include "util/assert.hpp"

namespace lrsizer::sim {

namespace {

/// VCD identifier codes: printable ASCII 33..126, shortest-first.
std::string vcd_id(std::int32_t index) {
  std::string id;
  std::int32_t v = index;
  do {
    id.push_back(static_cast<char>(33 + v % 94));
    v = v / 94 - 1;
  } while (v >= 0);
  return id;
}

}  // namespace

void write_vcd(const netlist::LogicNetlist& netlist, const SimResult& result,
               std::ostream& out, const std::string& timescale) {
  LRSIZER_ASSERT(netlist.finalized());
  LRSIZER_ASSERT(result.waveforms.size() ==
                 static_cast<std::size_t>(netlist.num_gates_logic()));

  out << "$date lrsizer simulation $end\n";
  out << "$version lrsizer 1.0 $end\n";
  out << "$timescale " << timescale << " $end\n";
  out << "$scope module circuit $end\n";
  const std::int32_t n = netlist.num_gates_logic();
  for (std::int32_t g = 0; g < n; ++g) {
    out << "$var wire 1 " << vcd_id(g) << " " << netlist.gate(g).name << " $end\n";
  }
  out << "$upscope $end\n$enddefinitions $end\n";

  out << "#0\n$dumpvars\n";
  for (std::int32_t g = 0; g < n; ++g) {
    out << result.waveforms[static_cast<std::size_t>(g)].initial_value() << vcd_id(g)
        << "\n";
  }
  out << "$end\n";

  // Merge all transition lists into one time-ordered stream.
  std::map<SimTime, std::vector<std::int32_t>> events;
  for (std::int32_t g = 0; g < n; ++g) {
    for (SimTime t : result.waveforms[static_cast<std::size_t>(g)].toggles()) {
      if (t < result.horizon) events[t].push_back(g);
    }
  }
  std::vector<int> value(static_cast<std::size_t>(n));
  for (std::int32_t g = 0; g < n; ++g) {
    value[static_cast<std::size_t>(g)] =
        result.waveforms[static_cast<std::size_t>(g)].initial_value();
  }
  for (const auto& [t, nets] : events) {
    out << "#" << t << "\n";
    for (std::int32_t g : nets) {
      auto& v = value[static_cast<std::size_t>(g)];
      v = 1 - v;
      out << v << vcd_id(g) << "\n";
    }
  }
  out << "#" << result.horizon << "\n";
}

std::string to_vcd_string(const netlist::LogicNetlist& netlist, const SimResult& result,
                          const std::string& timescale) {
  std::ostringstream os;
  write_vcd(netlist, result, os, timescale);
  return os.str();
}

}  // namespace lrsizer::sim
