#include "sim/simulator.hpp"

#include <queue>
#include <tuple>

#include "util/assert.hpp"

namespace lrsizer::sim {

namespace {

struct Event {
  SimTime time;
  std::int32_t gate;
  int value;
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const { return a.time > b.time; }
};

}  // namespace

SimResult simulate(const netlist::LogicNetlist& netlist,
                   const std::vector<std::vector<int>>& vectors,
                   const SimOptions& options) {
  LRSIZER_ASSERT(netlist.finalized());
  LRSIZER_ASSERT(!vectors.empty());
  LRSIZER_ASSERT(options.vector_period > 0);
  LRSIZER_ASSERT(options.gate_delay > 0);
  LRSIZER_ASSERT(options.gate_delay < options.vector_period);

  const std::int32_t n = netlist.num_gates_logic();
  const auto& pis = netlist.primary_inputs();
  for (const auto& v : vectors) {
    LRSIZER_ASSERT_MSG(v.size() == pis.size(), "vector width != #primary inputs");
  }

  // Fanout lists (consumer gate indices per net).
  std::vector<std::vector<std::int32_t>> fanouts(static_cast<std::size_t>(n));
  for (std::int32_t g = 0; g < n; ++g) {
    for (std::int32_t f : netlist.gate(g).fanin) {
      fanouts[static_cast<std::size_t>(f)].push_back(g);
    }
  }

  // Settle to vector 0 with zero delay (definition order is topological).
  std::vector<int> value(static_cast<std::size_t>(n), 0);
  for (std::size_t i = 0; i < pis.size(); ++i) {
    value[static_cast<std::size_t>(pis[i])] = vectors[0][i];
  }
  std::vector<int> scratch;
  auto eval_gate = [&](std::int32_t g) {
    const auto& gate = netlist.gate(g);
    scratch.clear();
    for (std::int32_t f : gate.fanin) {
      scratch.push_back(value[static_cast<std::size_t>(f)]);
    }
    return netlist::eval_logic_op(gate.op, scratch);
  };
  for (std::int32_t g : netlist.topo_order()) {
    if (netlist.gate(g).op != netlist::LogicOp::kInput) {
      value[static_cast<std::size_t>(g)] = eval_gate(g);
    }
  }

  SimResult result;
  result.waveforms.reserve(static_cast<std::size_t>(n));
  for (std::int32_t g = 0; g < n; ++g) {
    result.waveforms.emplace_back(value[static_cast<std::size_t>(g)]);
  }
  result.horizon = static_cast<SimTime>(vectors.size()) * options.vector_period;

  std::priority_queue<Event, std::vector<Event>, EventLater> events;
  std::vector<int> last_scheduled = value;
  std::vector<SimTime> dirty_mark(static_cast<std::size_t>(n), -1);
  std::vector<std::int32_t> dirty;

  // Input changes for vectors 1..end.
  for (std::size_t k = 1; k < vectors.size(); ++k) {
    const SimTime t = static_cast<SimTime>(k) * options.vector_period;
    for (std::size_t i = 0; i < pis.size(); ++i) {
      events.push(Event{t, pis[i], vectors[k][i]});
    }
  }

  while (!events.empty()) {
    const SimTime t = events.top().time;
    dirty.clear();
    // Apply the whole time step, then evaluate affected gates once.
    while (!events.empty() && events.top().time == t) {
      const Event ev = events.top();
      events.pop();
      const auto g = static_cast<std::size_t>(ev.gate);
      ++result.total_events;
      if (value[g] == ev.value) continue;
      value[g] = ev.value;
      result.waveforms[g].add_toggle(t);
      for (std::int32_t consumer : fanouts[g]) {
        if (dirty_mark[static_cast<std::size_t>(consumer)] != t) {
          dirty_mark[static_cast<std::size_t>(consumer)] = t;
          dirty.push_back(consumer);
        }
      }
    }
    for (std::int32_t g : dirty) {
      const int nv = eval_gate(g);
      if (nv != last_scheduled[static_cast<std::size_t>(g)]) {
        last_scheduled[static_cast<std::size_t>(g)] = nv;
        events.push(Event{t + options.gate_delay, g, nv});
      }
    }
  }

  return result;
}

}  // namespace lrsizer::sim
