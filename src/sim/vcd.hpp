// VCD (Value Change Dump) export of simulated waveforms, viewable in
// GTKWave and friends. Useful for debugging switching-similarity results:
// wires the flow placed on adjacent tracks should visibly toggle together.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "netlist/logic_netlist.hpp"
#include "sim/simulator.hpp"

namespace lrsizer::sim {

/// Write all net waveforms of `result` as a VCD file. Net names come from
/// the logic netlist; `timescale` labels one simulator tick.
void write_vcd(const netlist::LogicNetlist& netlist, const SimResult& result,
               std::ostream& out, const std::string& timescale = "1ps");

std::string to_vcd_string(const netlist::LogicNetlist& netlist,
                          const SimResult& result,
                          const std::string& timescale = "1ps");

}  // namespace lrsizer::sim
