// Test pattern generation. The paper takes patterns "from the logic
// simulation stage"; we generate seeded pseudo-random vectors (see
// docs/ARCHITECTURE.md, substitution S2).
#pragma once

#include <cstdint>
#include <vector>

namespace lrsizer::sim {

/// `num_vectors` rows of `num_inputs` bits each (0/1).
std::vector<std::vector<int>> random_vectors(std::int32_t num_inputs,
                                             std::int32_t num_vectors,
                                             std::uint64_t seed);

/// Vectors where each input toggles with its own probability — produces
/// correlated/anticorrelated signal groups, useful for similarity tests.
std::vector<std::vector<int>> biased_vectors(std::int32_t num_inputs,
                                             std::int32_t num_vectors,
                                             double toggle_probability,
                                             std::uint64_t seed);

}  // namespace lrsizer::sim
