#include "sim/waveform.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace lrsizer::sim {

void Waveform::add_toggle(SimTime t) {
  LRSIZER_ASSERT_MSG(toggles_.empty() || t >= toggles_.back(),
                     "toggles must be appended in time order");
  if (!toggles_.empty() && toggles_.back() == t) {
    // Zero-width glitch: a double toggle at the same instant is a no-op.
    toggles_.pop_back();
    return;
  }
  toggles_.push_back(t);
}

int Waveform::value_at(SimTime t) const {
  // Toggles at times <= t have taken effect.
  const auto k = std::upper_bound(toggles_.begin(), toggles_.end(), t) - toggles_.begin();
  return (initial_ + static_cast<int>(k % 2)) % 2;
}

std::int64_t Waveform::transition_count(SimTime horizon) const {
  return std::lower_bound(toggles_.begin(), toggles_.end(), horizon) - toggles_.begin();
}

double Waveform::similarity(const Waveform& a, const Waveform& b, SimTime horizon) {
  LRSIZER_ASSERT(horizon > 0);
  // Merged sweep over both transition lists; accumulate signed agreement
  // time: +dt where values are equal, -dt where they differ.
  std::size_t ia = 0;
  std::size_t ib = 0;
  int va = a.initial_value();
  int vb = b.initial_value();
  SimTime t = 0;
  std::int64_t agree = 0;  // ∫ f_a f_b dt = (agree time) - (disagree time)
  std::int64_t disagree = 0;
  while (t < horizon) {
    SimTime next = horizon;
    if (ia < a.toggles_.size()) next = std::min(next, a.toggles_[ia]);
    if (ib < b.toggles_.size()) next = std::min(next, b.toggles_[ib]);
    if (next > t) {
      if (va == vb) {
        agree += next - t;
      } else {
        disagree += next - t;
      }
      t = next;
    }
    if (t >= horizon) break;
    if (ia < a.toggles_.size() && a.toggles_[ia] == t) {
      va = 1 - va;
      ++ia;
    }
    if (ib < b.toggles_.size() && b.toggles_[ib] == t) {
      vb = 1 - vb;
      ++ib;
    }
  }
  return static_cast<double>(agree - disagree) / static_cast<double>(horizon);
}

}  // namespace lrsizer::sim
