#!/usr/bin/env python3
"""Diff two BENCH_kernels.json files and flag perf regressions.

Usage:
    tools/bench_compare.py BASELINE.json CANDIDATE.json [--threshold PCT]

Matches rows by (kernel, threads) and reports the ns/op delta for each;
exits 1 when any kernel regressed by more than --threshold percent (default
10). Rows present in only one file are listed but never fail the diff (new
kernels appear, old ones retire). The redundancy block is compared the same
way via its fused ns.

--metrics restricts the comparison to kernels matching any of the given
comma-separated glob patterns (e.g. `--metrics ogws_iteration` or
`--metrics 'lrs_*,timing_*'`) — the shape CI's trace-disabled bench guard
uses to pin one hot loop without flaking on unrelated kernels.

The lrsizer-bench-kernels-v1 schema this consumes (and the batch/cache
schemas its sibling reports use) is documented in docs/SCHEMAS.md.

Stdlib-only so it runs anywhere CI has a python3.
"""

import argparse
import fnmatch
import json
import sys


def load_rows(path):
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != "lrsizer-bench-kernels-v1":
        sys.exit(f"{path}: not a lrsizer-bench-kernels-v1 file "
                 f"(schema = {doc.get('schema')!r})")
    rows = {(row["kernel"], row["threads"]): row["ns_per_op"]
            for row in doc.get("kernels", [])}
    red = doc.get("redundancy")
    if red:
        rows[("redundancy/fused", 1)] = red["fused_ns"]
    return doc, rows


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="regression threshold in percent (default 10)")
    parser.add_argument("--metrics", default=None,
                        help="comma-separated kernel-name globs; only "
                             "matching rows are compared (default: all)")
    args = parser.parse_args()

    base_doc, base = load_rows(args.baseline)
    cand_doc, cand = load_rows(args.candidate)
    if args.metrics:
        patterns = [p.strip() for p in args.metrics.split(",") if p.strip()]
        selected = lambda kernel: any(  # noqa: E731
            fnmatch.fnmatch(kernel, p) for p in patterns)
        base = {k: v for k, v in base.items() if selected(k[0])}
        cand = {k: v for k, v in cand.items() if selected(k[0])}
        if not base and not cand:
            sys.exit(f"--metrics {args.metrics!r} matched no kernels")
    print(f"baseline  {args.baseline} (git {base_doc.get('git_sha', '?')}, "
          f"profile {base_doc.get('profile', '?')})")
    print(f"candidate {args.candidate} (git {cand_doc.get('git_sha', '?')}, "
          f"profile {cand_doc.get('profile', '?')})")
    if base_doc.get("profile") != cand_doc.get("profile"):
        print("warning: different profiles — deltas are not comparable",
              file=sys.stderr)

    regressions = []
    width = max((len(k) for k, _ in base.keys() | cand.keys()), default=6) + 2
    print(f"{'kernel':<{width}} {'thr':>3} {'base ns':>12} {'cand ns':>12} {'delta':>8}")
    for key in sorted(base.keys() | cand.keys()):
        kernel, threads = key
        if key not in base:
            print(f"{kernel:<{width}} {threads:>3} {'-':>12} {cand[key]:>12.0f}      new")
            continue
        if key not in cand:
            print(f"{kernel:<{width}} {threads:>3} {base[key]:>12.0f} {'-':>12}  removed")
            continue
        delta = 100.0 * (cand[key] - base[key]) / base[key] if base[key] > 0 else 0.0
        marker = ""
        if delta > args.threshold:
            marker = "  REGRESSION"
            regressions.append((kernel, threads, delta))
        print(f"{kernel:<{width}} {threads:>3} {base[key]:>12.0f} "
              f"{cand[key]:>12.0f} {delta:>+7.1f}%{marker}")

    if regressions:
        print(f"\n{len(regressions)} kernel(s) regressed more than "
              f"{args.threshold:.0f}%:", file=sys.stderr)
        for kernel, threads, delta in regressions:
            print(f"  {kernel} (threads={threads}): {delta:+.1f}%", file=sys.stderr)
        return 1
    print("\nno regressions above threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
