#!/usr/bin/env python3
"""Multi-client soak for `lrsizer serve --listen` (CI smoke).

Default mode launches the server on an ephemeral port with a deliberately
tight LRU cache AND tight admission budgets (--max-pending 3,
--max-pending-per-client 2), drives N concurrent TCP clients through M
sizing jobs each in pipelined windows (with a bogus cancel and a stats poll
interleaved), honoring `retry_after_ms` with jittered exponential backoff
whenever a request is shed, then reconciles the server's `stats` counters
against the client-side tallies:

  * every client eventually received exactly M results, all well-formed;
  * results for the same (profile, seed) are byte-identical across clients
    modulo request-scoped fields (name/cache_hit) and wall-clock timings;
  * server stats: accepted == completed == N*M, shed == the overloaded
    rejections the clients counted, errors == shed + N ghost-cancel
    errors, timeouts == 0, queue_depth == 0, latency.count == N*M;
  * GET /metrics is scraped mid-soak (parses as Prometheus text, counters
    monotone) and once more at the quiescent end, where every shared series
    must equal the jsonl stats response exactly — the two surfaces read one
    registry, and a divergence is a hard failure;
  * the final stats snapshot is saved (CI uploads it as an artifact).

--chaos mode instead runs the fault-injection battery end to end: the
server starts with LRSIZER_FAULT arming json.parse and cache.write faults,
a disk cache, and a 400 ms default deadline; clients ride out injected
parse errors (resend) and deadline-cut slow jobs (timeout partials or
deadline errors); then SIGTERM lands mid-flight and the script asserts the
graceful-drain contract — /healthz flips to 503 draining, /metrics still
answers (draining gauge = 1, fault counters advanced), new jsonl clients
are turned away, the in-flight job still gets its result, and the server
exits 0 with every submitted job holding exactly one terminal response.

Usage: serve_soak.py /path/to/lrsizer [--clients N] [--jobs M] [--out FILE]
                     [--chaos]
"""

import argparse
import json
import os
import random
import re
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time


def parse_ports(stream):
    """The server announces `listening on 127.0.0.1:<port>` and
    `metrics on 127.0.0.1:<port>` on stderr (in that order)."""
    port = metrics_port = None
    while port is None or metrics_port is None:
        raw = stream.readline()
        if not raw:
            raise RuntimeError("server exited before announcing its ports")
        line = raw.decode("utf-8", "replace")
        sys.stderr.write(line)
        m = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
        if m:
            port = int(m.group(1))
        m = re.search(r"metrics on 127\.0\.0\.1:(\d+)", line)
        if m:
            metrics_port = int(m.group(1))
    return port, metrics_port


def http_get(metrics_port, path):
    """One HTTP exchange on the metrics port; returns the raw response."""
    sock = socket.create_connection(("127.0.0.1", metrics_port), timeout=120)
    sock.settimeout(120)
    sock.sendall(b"GET " + path + b" HTTP/1.1\r\nHost: soak\r\n\r\n")
    response = b""
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            break
        response += chunk
    sock.close()
    return response


def scrape_metrics(metrics_port):
    """One GET /metrics exchange: returns {series: value} or raises."""
    response = http_get(metrics_port, b"/metrics")
    head, _, body = response.partition(b"\r\n\r\n")
    status = head.split(b"\r\n", 1)[0].decode()
    assert status == "HTTP/1.1 200 OK", status
    assert b"text/plain; version=0.0.4" in head, head
    samples = {}
    for line in body.decode().splitlines():
        if not line or line.startswith("#"):
            continue
        series, _, value = line.rpartition(" ")
        samples[series] = float(value)
    assert samples, "empty exposition"
    return samples


def probe_healthz(metrics_port):
    response = http_get(metrics_port, b"/healthz")
    assert response.startswith(b"HTTP/1.1 200 OK\r\n"), response[:64]
    assert response.endswith(b"\r\n\r\nok\n"), response[-32:]


def scrape_during_soak(metrics_port, stop_event, observations, failures):
    """Scrape /metrics in a loop while clients hammer the jsonl port: the
    endpoint must answer from the shared poll loop mid-load, and counters
    must be monotone scrape over scrape."""
    last_accepted = -1.0
    try:
        while True:
            samples = scrape_metrics(metrics_port)
            accepted = samples.get("lrsizer_serve_accepted_total", 0.0)
            assert accepted >= last_accepted, (
                "accepted_total went backwards: %r -> %r"
                % (last_accepted, accepted))
            last_accepted = accepted
            observations.append(samples)
            if stop_event.wait(0.2):
                return
    except Exception as exc:  # noqa: BLE001 - report, don't hang the soak
        failures.append("metrics scraper: %s" % exc)


def reconcile_metrics(samples, stats, expected_accepted):
    """Hard-fail unless every series shared between /metrics and the jsonl
    stats response agrees exactly (both read the same registry, and the
    server is quiescent when this runs)."""
    jobs = stats["jobs"]
    expectations = {
        "lrsizer_serve_accepted_total": jobs["accepted"],
        'lrsizer_serve_responses_total{type="result"}': jobs["completed"],
        'lrsizer_serve_responses_total{type="cancelled"}': jobs["cancelled"],
        'lrsizer_serve_responses_total{type="error"}': jobs["errors"],
        "lrsizer_serve_cache_hits_total": jobs["cache_hits"],
        "lrsizer_serve_shed_total": jobs["shed"],
        "lrsizer_jobs_timeout_total": jobs["timeouts"],
        "lrsizer_serve_queue_depth": jobs["queue_depth"],
        "lrsizer_serve_draining": 0,
        "lrsizer_serve_clients": stats["clients"]["active"],
        "lrsizer_cache_entries": stats["cache"]["entries"],
        "lrsizer_cache_evictions_total": stats["cache"]["evictions"],
        "lrsizer_cache_corrupt_total": stats["cache"]["corrupt"],
        "lrsizer_serve_job_latency_seconds_count": stats["latency"]["count"],
        'lrsizer_build_info{version="%s"}' % stats["server"]["version"]: 1,
        "lrsizer_serve_job_latency_seconds_bucket{le=\"+Inf\"}":
            stats["latency"]["count"],
    }
    divergent = {
        series: (samples.get(series), expected)
        for series, expected in expectations.items()
        if samples.get(series) != float(expected)
    }
    assert not divergent, (
        "metrics/stats divergence (series: (scraped, expected)): %r"
        % divergent)
    # Client-side tallies close the loop: the registry's accepted count is
    # exactly the number of size requests the soak clients got admitted.
    assert samples["lrsizer_serve_accepted_total"] == expected_accepted, (
        samples["lrsizer_serve_accepted_total"], expected_accepted)


def drain(stream):
    while True:
        raw = stream.readline()
        if not raw:
            return
        sys.stderr.write(raw.decode("utf-8", "replace"))


def normalized(job):
    job = dict(job)
    job["name"] = None
    job["cache_hit"] = None
    for key in ("seconds", "stage1_seconds", "stage2_seconds"):
        job[key] = None
    return job


def backoff_sleep(retry_after_ms, attempt):
    """Honor the server's retry_after_ms hint: jittered exponential backoff
    so a fleet of shed clients does not stampede back in lockstep."""
    base = max(retry_after_ms, 1) / 1000.0
    time.sleep(min(base * (2 ** attempt) * (0.5 + random.random()), 5.0))


def run_client(index, port, jobs, failures, payloads, tallies, lock):
    """Pipelines jobs in windows of 3 against --max-pending-per-client 2 /
    --max-pending 3: overloaded rejections are expected, carry a
    retry_after_ms hint, and are retried until admitted."""
    try:
        sock = socket.create_connection(("127.0.0.1", port), timeout=120)
        sock.settimeout(120)
        reader = sock.makefile("rb")
        hello = json.loads(reader.readline())
        assert hello["type"] == "hello", hello
        assert hello["schema"] == "lrsizer-serve-v3", hello
        results, shed, errors, stats = {}, 0, 0, 0
        # Job ids collide across clients on purpose: the per-client id
        # namespace must keep them independent.
        for base in range(0, jobs, 3):
            window = list(range(base, min(base + 3, jobs)))
            attempt = {k: 0 for k in window}
            outstanding = set()
            for k in window:
                request = {
                    "type": "size",
                    "id": "j%d" % k,
                    "seed": (k % 3) + 1,
                    "input": {"profile": "c17"},
                    "options": {"vectors": 8},
                }
                sock.sendall((json.dumps(request) + "\n").encode())
                outstanding.add("j%d" % k)
            if base == 0:
                sock.sendall(b'{"type":"cancel","id":"ghost"}\n')
                sock.sendall(b'{"type":"stats"}\n')
            while outstanding:
                line = reader.readline()
                if not line:
                    raise RuntimeError(
                        "client %d: EOF before all responses" % index)
                response = json.loads(line)
                rtype = response["type"]
                if rtype == "result":
                    results[response["id"]] = response["job"]
                    outstanding.discard(response["id"])
                elif rtype == "error":
                    if response.get("id") == "ghost":
                        assert response["code"] == "not_found", response
                        errors += 1
                        continue
                    # Admission pressure: back off as told, then resend.
                    assert response["code"] == "overloaded", response
                    job_id = response["id"]
                    assert job_id in outstanding, response
                    shed += 1
                    k = int(job_id[1:])
                    backoff_sleep(response["retry_after_ms"], attempt[k])
                    attempt[k] += 1
                    request = {
                        "type": "size",
                        "id": job_id,
                        "seed": (k % 3) + 1,
                        "input": {"profile": "c17"},
                        "options": {"vectors": 8},
                    }
                    sock.sendall((json.dumps(request) + "\n").encode())
                elif rtype == "stats":
                    stats += 1
                elif rtype not in ("accepted",):
                    raise RuntimeError(
                        "client %d: unexpected %r" % (index, rtype))
        assert len(results) == jobs, (len(results), jobs)
        assert errors == 1 and stats == 1, (errors, stats)
        with lock:
            tallies["shed"] += shed
            for job_id, job in results.items():
                seed = (int(job_id[1:]) % 3) + 1
                payloads.setdefault(seed, []).append(normalized(job))
        reader.close()
        sock.close()
    except Exception as exc:  # noqa: BLE001 - report, don't hang the soak
        failures.append("client %d: %s" % (index, exc))


def run_soak(args):
    server = subprocess.Popen(
        [
            args.lrsizer, "serve", "--listen", "0", "--metrics-port", "0",
            "--jobs", "2", "--cache-max-entries", "2", "--stats-dump",
            "--max-pending", "3", "--max-pending-per-client", "2",
            "--quiet",
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    try:
        port, metrics_port = parse_ports(server.stderr)
        stderr_drain = threading.Thread(
            target=drain, args=(server.stderr,), daemon=True)
        stderr_drain.start()
        probe_healthz(metrics_port)

        failures, payloads, lock = [], {}, threading.Lock()
        tallies = {"shed": 0}
        scraper_stop = threading.Event()
        observations = []
        scraper = threading.Thread(
            target=scrape_during_soak,
            args=(metrics_port, scraper_stop, observations, failures))
        scraper.start()
        clients = [
            threading.Thread(
                target=run_client,
                args=(i, port, args.jobs, failures, payloads, tallies, lock))
            for i in range(args.clients)
        ]
        for c in clients:
            c.start()
        for c in clients:
            c.join(timeout=600)
        scraper_stop.set()
        scraper.join(timeout=600)
        assert not failures, failures
        assert observations, "no mid-soak /metrics scrapes landed"

        # Determinism across clients and cache/eviction churn: every payload
        # for a given seed is identical.
        for seed, jobs in sorted(payloads.items()):
            assert len(jobs) == args.clients * (args.jobs // 3 +
                                                (seed - 1 < args.jobs % 3)), (
                seed, len(jobs))
            assert all(j == jobs[0] for j in jobs), (
                "seed %d payloads differ across clients" % seed)

        # Fleet reconciliation from a final auditor connection.
        sock = socket.create_connection(("127.0.0.1", port), timeout=120)
        sock.settimeout(120)
        reader = sock.makefile("rb")
        json.loads(reader.readline())  # hello
        sock.sendall(b'{"type":"stats","id":"audit"}\n')
        stats = json.loads(reader.readline())
        assert stats["type"] == "stats", stats
        total = args.clients * args.jobs
        jobs = stats["jobs"]
        assert jobs["accepted"] == total, jobs
        assert jobs["completed"] == total, jobs
        # Every shed the server counted reached a client as an overloaded
        # error and was retried to completion; the ghost cancels are the
        # only other errors.
        assert jobs["shed"] == tallies["shed"], (jobs, tallies)
        assert jobs["errors"] == args.clients + tallies["shed"], (
            jobs, tallies)
        assert jobs["timeouts"] == 0, jobs
        assert jobs["cancelled"] == 0, jobs
        assert jobs["queue_depth"] == 0, jobs
        assert jobs["cache_hits"] >= 1, jobs
        assert stats["clients"]["active"] == 1, stats["clients"]
        assert stats["server"]["state"] == "serving", stats["server"]
        cache = stats["cache"]
        assert cache["entries"] <= 2, cache
        assert cache["evictions"] >= 1, cache
        assert cache["corrupt"] == 0, cache
        latency = stats["latency"]
        assert latency["count"] == total, latency
        assert latency["p99_ms"] >= latency["p50_ms"] > 0, latency
        assert stats["server"]["version"].startswith("lrsizer"), stats["server"]
        assert stats["server"]["uptime_s"] > 0, stats["server"]

        # The server is quiescent now: a scrape taken here must agree with
        # the stats response series for series.
        reconcile_metrics(scrape_metrics(metrics_port), stats, total)

        with open(args.out, "w") as f:
            json.dump(stats, f, indent=2, sort_keys=True)
        print("serve soak: %d clients x %d jobs OK, %d shed+retried "
              "(%d mid-soak scrapes); stats saved to %s"
              % (args.clients, args.jobs, tallies["shed"],
                 len(observations), args.out))

        sock.sendall(b'{"type":"shutdown"}\n')
        reader.close()
        sock.close()
        server.wait(timeout=120)
        assert server.returncode == 0, server.returncode
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()


def chaos_terminal(reader, job_id):
    """Read until the named job's terminal response (result or error),
    skipping accepted/progress frames."""
    while True:
        line = reader.readline()
        if not line:
            return None  # EOF is terminal too (drain raced us)
        response = json.loads(line)
        if response["type"] in ("accepted", "progress"):
            continue
        assert response.get("id") == job_id, (response, job_id)
        return response


def run_chaos_client(index, port, jobs, failures, tallies, lock):
    """Sequential requests, one terminal per job, under armed faults: an
    injected parse error is resent (the id is echoed), an overloaded shed
    backs off as told, and a deadline cut — timeout-marked partial result
    or deadline error — is terminal."""
    try:
        sock = socket.create_connection(("127.0.0.1", port), timeout=120)
        sock.settimeout(120)
        reader = sock.makefile("rb")
        hello = json.loads(reader.readline())
        assert hello["schema"] == "lrsizer-serve-v3", hello
        completed = timeouts = parse_retries = shed = 0
        for k in range(jobs):
            job_id = "c%d-%d" % (index, k)
            slow = (k % 4) == 3
            request = {
                "type": "size",
                "id": job_id,
                "seed": k + 1,
                "input": {"profile": "c6288" if slow else "c17"},
                "options": {"vectors": 64 if slow else 8},
            }
            payload = (json.dumps(request) + "\n").encode()
            attempt = 0
            while True:
                sock.sendall(payload)
                response = chaos_terminal(reader, job_id)
                assert response is not None, "EOF before SIGTERM"
                if response["type"] == "result":
                    completed += 1
                    if response.get("timeout"):
                        timeouts += 1
                    break
                assert response["type"] == "error", response
                code = response["code"]
                if code == "parse":
                    parse_retries += 1  # injected json.parse fault: resend
                elif code == "overloaded":
                    shed += 1
                    backoff_sleep(response["retry_after_ms"], attempt)
                elif code == "deadline":
                    timeouts += 1  # cut before a partial existed: terminal
                    break
                else:
                    raise RuntimeError("unexpected error: %r" % response)
                attempt += 1
                assert attempt < 50, "job %s never terminal" % job_id
        with lock:
            tallies["completed"] += completed
            tallies["timeouts"] += timeouts
            tallies["parse_retries"] += parse_retries
            tallies["shed"] += shed
        reader.close()
        sock.close()
    except Exception as exc:  # noqa: BLE001 - report, don't hang the soak
        failures.append("chaos client %d: %s" % (index, exc))


def run_chaos(args):
    cache_dir = tempfile.mkdtemp(prefix="lrsizer_chaos_cache_")
    env = dict(os.environ)
    env["LRSIZER_FAULT"] = "json.parse:every=7,cache.write:every=2"
    server = subprocess.Popen(
        [
            args.lrsizer, "serve", "--listen", "0", "--metrics-port", "0",
            "--jobs", "2", "--cache-max-entries", "8",
            "--cache-dir", cache_dir,
            "--max-pending", "8", "--max-pending-per-client", "4",
            "--default-deadline-ms", "400",
            "--quiet",
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        env=env,
    )
    try:
        port, metrics_port = parse_ports(server.stderr)
        threading.Thread(target=drain, args=(server.stderr,),
                         daemon=True).start()
        probe_healthz(metrics_port)

        # Phase 1: chaos load. Every 4th job is slow enough that the 400 ms
        # default deadline cuts it; every 7th request line hits an injected
        # parse fault; every 2nd disk-cache persist is dropped.
        failures, lock = [], threading.Lock()
        tallies = {"completed": 0, "timeouts": 0, "parse_retries": 0,
                   "shed": 0}
        clients = [
            threading.Thread(
                target=run_chaos_client,
                args=(i, port, args.jobs, failures, tallies, lock))
            for i in range(args.clients)
        ]
        for c in clients:
            c.start()
        for c in clients:
            c.join(timeout=600)
        assert not failures, failures
        total = args.clients * args.jobs
        # Exactly one terminal per submitted job, and the fault load left
        # visible scars: injected parse errors were survived via resend and
        # deadline cuts produced timeout terminals.
        assert tallies["completed"] + tallies["timeouts"] >= total, tallies
        assert tallies["parse_retries"] >= 1, tallies
        assert tallies["timeouts"] >= 1, tallies

        # Phase 2: anchor a slow job (deadline_ms: 0 opts out of the server
        # default) so the drain window below stays open.
        anchor = socket.create_connection(("127.0.0.1", port), timeout=120)
        anchor.settimeout(120)
        reader = anchor.makefile("rb")
        json.loads(reader.readline())  # hello
        request = (b'{"type":"size","id":"anchor","seed":991,'
                   b'"input":{"profile":"c6288"},"options":{"vectors":256},'
                   b'"progress":1,"deadline_ms":0}\n')
        started = False
        while not started:
            anchor.sendall(request)
            line = reader.readline()
            assert line, "EOF waiting for anchor admission"
            response = json.loads(line)
            if response["type"] == "error" and response["code"] == "parse":
                continue  # injected fault ate the request line: resend
            assert response["type"] == "accepted", response
            while True:
                response = json.loads(reader.readline())
                if response["type"] == "progress":
                    started = True
                    break

        # Phase 3: SIGTERM mid-flight, then verify the drain contract.
        server.send_signal(signal.SIGTERM)
        deadline = time.time() + 60
        while True:
            response = http_get(metrics_port, b"/healthz")
            if response.startswith(b"HTTP/1.1 503 ") and b"draining" in response:
                break
            assert time.time() < deadline, "healthz never turned 503 draining"
            time.sleep(0.03)
        samples = scrape_metrics(metrics_port)
        assert samples["lrsizer_serve_draining"] == 1.0, samples
        assert samples["lrsizer_jobs_timeout_total"] >= 1, samples
        assert samples['lrsizer_fault_injected_total{point="json.parse"}'] >= 1
        assert samples['lrsizer_fault_injected_total{point="cache.write"}'] >= 1

        # New jsonl clients are turned away while draining (closed before
        # hello, reset, or refused once the listener is gone).
        try:
            late = socket.create_connection(("127.0.0.1", port), timeout=10)
            late.settimeout(10)
            try:
                assert late.recv(4096) == b"", "draining server sent data"
            except ConnectionError:
                pass
            late.close()
        except ConnectionError:
            pass

        # The in-flight job still completes: a full (untimed) result, then
        # EOF as the drained server closes up.
        while True:
            line = reader.readline()
            assert line, "EOF before the anchor result"
            response = json.loads(line)
            if response["type"] == "progress":
                continue
            assert response["type"] == "result", response
            assert response["id"] == "anchor", response
            assert "timeout" not in response, response
            break
        assert reader.readline() == b"", "expected EOF after drain"
        reader.close()
        anchor.close()

        server.wait(timeout=120)
        assert server.returncode == 0, (
            "drained server exited %r, want 0" % server.returncode)
        print("chaos soak: %d clients x %d jobs OK under LRSIZER_FAULT=%s "
              "(%d timeout terminals, %d parse retries, %d shed); "
              "SIGTERM drained cleanly, exit 0"
              % (args.clients, args.jobs, env["LRSIZER_FAULT"],
                 tallies["timeouts"], tallies["parse_retries"],
                 tallies["shed"]))
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()
        shutil.rmtree(cache_dir, ignore_errors=True)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("lrsizer")
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--jobs", type=int, default=25)
    parser.add_argument("--out", default="serve_soak_stats.json")
    parser.add_argument("--chaos", action="store_true",
                        help="fault-injection + SIGTERM drain battery")
    args = parser.parse_args()
    if args.chaos:
        if args.jobs > 12:
            args.jobs = 12  # slow jobs dominate; keep the chaos pass bounded
        run_chaos(args)
    else:
        run_soak(args)


if __name__ == "__main__":
    main()
