#!/usr/bin/env python3
"""Multi-client soak for `lrsizer serve --listen` (CI smoke).

Launches the server on an ephemeral port with a deliberately tight LRU
cache, drives N concurrent TCP clients through M sizing jobs each (with a
bogus cancel and a stats poll interleaved), then reconciles the server's
`stats` counters against the client-side tallies:

  * every client received exactly M results and 1 error, all well-formed;
  * results for the same (profile, seed) are byte-identical across clients
    modulo request-scoped fields (name/cache_hit) and wall-clock timings;
  * server stats: accepted == completed == N*M, errors == N,
    queue_depth == 0, latency.count == N*M, cache entries within budget;
  * the final stats snapshot is saved (CI uploads it as an artifact).

Usage: serve_soak.py /path/to/lrsizer [--clients N] [--jobs M] [--out FILE]
"""

import argparse
import json
import re
import socket
import subprocess
import sys
import threading


def parse_port(stream):
    """The server announces `listening on 127.0.0.1:<port>` on stderr."""
    while True:
        raw = stream.readline()
        if not raw:
            raise RuntimeError("server exited before announcing its port")
        line = raw.decode("utf-8", "replace")
        sys.stderr.write(line)
        m = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
        if m:
            return int(m.group(1))


def drain(stream):
    while True:
        raw = stream.readline()
        if not raw:
            return
        sys.stderr.write(raw.decode("utf-8", "replace"))


def normalized(job):
    job = dict(job)
    job["name"] = None
    job["cache_hit"] = None
    for key in ("seconds", "stage1_seconds", "stage2_seconds"):
        job[key] = None
    return job


def run_client(index, port, jobs, failures, payloads, lock):
    try:
        sock = socket.create_connection(("127.0.0.1", port), timeout=120)
        sock.settimeout(120)
        reader = sock.makefile("rb")
        hello = json.loads(reader.readline())
        assert hello["type"] == "hello", hello
        assert hello["schema"] == "lrsizer-serve-v2", hello
        # Job ids collide across clients on purpose: the per-client id
        # namespace must keep them independent.
        for k in range(jobs):
            seed = (k % 3) + 1
            request = {
                "type": "size",
                "id": "j%d" % k,
                "seed": seed,
                "input": {"profile": "c17"},
                "options": {"vectors": 8},
            }
            sock.sendall((json.dumps(request) + "\n").encode())
            if k == 1:
                sock.sendall(b'{"type":"cancel","id":"ghost"}\n')
            if k == 2:
                sock.sendall(b'{"type":"stats"}\n')
        results, errors, stats = {}, 0, 0
        while len(results) < jobs or errors < 1 or stats < 1:
            line = reader.readline()
            if not line:
                raise RuntimeError("client %d: EOF before all responses" % index)
            response = json.loads(line)
            rtype = response["type"]
            if rtype == "result":
                results[response["id"]] = response["job"]
            elif rtype == "error":
                assert response.get("id") == "ghost", response
                errors += 1
            elif rtype == "stats":
                stats += 1
            elif rtype not in ("accepted",):
                raise RuntimeError("client %d: unexpected %r" % (index, rtype))
        with lock:
            for job_id, job in results.items():
                seed = (int(job_id[1:]) % 3) + 1
                payloads.setdefault(seed, []).append(normalized(job))
        reader.close()
        sock.close()
    except Exception as exc:  # noqa: BLE001 - report, don't hang the soak
        failures.append("client %d: %s" % (index, exc))


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("lrsizer")
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--jobs", type=int, default=25)
    parser.add_argument("--out", default="serve_soak_stats.json")
    args = parser.parse_args()

    server = subprocess.Popen(
        [
            args.lrsizer, "serve", "--listen", "0", "--jobs", "2",
            "--cache-max-entries", "2", "--stats-dump", "--quiet",
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    try:
        port = parse_port(server.stderr)
        stderr_drain = threading.Thread(
            target=drain, args=(server.stderr,), daemon=True)
        stderr_drain.start()

        failures, payloads, lock = [], {}, threading.Lock()
        clients = [
            threading.Thread(
                target=run_client,
                args=(i, port, args.jobs, failures, payloads, lock))
            for i in range(args.clients)
        ]
        for c in clients:
            c.start()
        for c in clients:
            c.join(timeout=600)
        assert not failures, failures

        # Determinism across clients and cache/eviction churn: every payload
        # for a given seed is identical.
        for seed, jobs in sorted(payloads.items()):
            assert len(jobs) == args.clients * (args.jobs // 3 +
                                                (seed - 1 < args.jobs % 3)), (
                seed, len(jobs))
            assert all(j == jobs[0] for j in jobs), (
                "seed %d payloads differ across clients" % seed)

        # Fleet reconciliation from a final auditor connection.
        sock = socket.create_connection(("127.0.0.1", port), timeout=120)
        sock.settimeout(120)
        reader = sock.makefile("rb")
        json.loads(reader.readline())  # hello
        sock.sendall(b'{"type":"stats","id":"audit"}\n')
        stats = json.loads(reader.readline())
        assert stats["type"] == "stats", stats
        total = args.clients * args.jobs
        jobs = stats["jobs"]
        assert jobs["accepted"] == total, jobs
        assert jobs["completed"] == total, jobs
        assert jobs["errors"] == args.clients, jobs
        assert jobs["cancelled"] == 0, jobs
        assert jobs["queue_depth"] == 0, jobs
        assert jobs["cache_hits"] >= 1, jobs
        assert stats["clients"]["active"] == 1, stats["clients"]
        cache = stats["cache"]
        assert cache["entries"] <= 2, cache
        assert cache["evictions"] >= 1, cache
        latency = stats["latency"]
        assert latency["count"] == total, latency
        assert latency["p99_ms"] >= latency["p50_ms"] > 0, latency

        with open(args.out, "w") as f:
            json.dump(stats, f, indent=2, sort_keys=True)
        print("serve soak: %d clients x %d jobs OK; stats saved to %s"
              % (args.clients, args.jobs, args.out))

        sock.sendall(b'{"type":"shutdown"}\n')
        reader.close()
        sock.close()
        server.wait(timeout=120)
        assert server.returncode == 0, server.returncode
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()


if __name__ == "__main__":
    main()
