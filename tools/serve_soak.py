#!/usr/bin/env python3
"""Multi-client soak for `lrsizer serve --listen` (CI smoke).

Launches the server on an ephemeral port with a deliberately tight LRU
cache, drives N concurrent TCP clients through M sizing jobs each (with a
bogus cancel and a stats poll interleaved), then reconciles the server's
`stats` counters against the client-side tallies:

  * every client received exactly M results and 1 error, all well-formed;
  * results for the same (profile, seed) are byte-identical across clients
    modulo request-scoped fields (name/cache_hit) and wall-clock timings;
  * server stats: accepted == completed == N*M, errors == N,
    queue_depth == 0, latency.count == N*M, cache entries within budget;
  * GET /metrics is scraped mid-soak (parses as Prometheus text, counters
    monotone) and once more at the quiescent end, where every shared series
    must equal the jsonl stats response exactly — the two surfaces read one
    registry, and a divergence is a hard failure;
  * the final stats snapshot is saved (CI uploads it as an artifact).

Usage: serve_soak.py /path/to/lrsizer [--clients N] [--jobs M] [--out FILE]
"""

import argparse
import json
import re
import socket
import subprocess
import sys
import threading


def parse_ports(stream):
    """The server announces `listening on 127.0.0.1:<port>` and
    `metrics on 127.0.0.1:<port>` on stderr (in that order)."""
    port = metrics_port = None
    while port is None or metrics_port is None:
        raw = stream.readline()
        if not raw:
            raise RuntimeError("server exited before announcing its ports")
        line = raw.decode("utf-8", "replace")
        sys.stderr.write(line)
        m = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
        if m:
            port = int(m.group(1))
        m = re.search(r"metrics on 127\.0\.0\.1:(\d+)", line)
        if m:
            metrics_port = int(m.group(1))
    return port, metrics_port


def scrape_metrics(metrics_port):
    """One GET /metrics exchange: returns {series: value} or raises."""
    sock = socket.create_connection(("127.0.0.1", metrics_port), timeout=120)
    sock.settimeout(120)
    sock.sendall(b"GET /metrics HTTP/1.1\r\nHost: soak\r\n\r\n")
    response = b""
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            break
        response += chunk
    sock.close()
    head, _, body = response.partition(b"\r\n\r\n")
    status = head.split(b"\r\n", 1)[0].decode()
    assert status == "HTTP/1.1 200 OK", status
    assert b"text/plain; version=0.0.4" in head, head
    samples = {}
    for line in body.decode().splitlines():
        if not line or line.startswith("#"):
            continue
        series, _, value = line.rpartition(" ")
        samples[series] = float(value)
    assert samples, "empty exposition"
    return samples


def probe_healthz(metrics_port):
    sock = socket.create_connection(("127.0.0.1", metrics_port), timeout=120)
    sock.settimeout(120)
    sock.sendall(b"GET /healthz HTTP/1.1\r\nHost: soak\r\n\r\n")
    response = b""
    while True:
        chunk = sock.recv(4096)
        if not chunk:
            break
        response += chunk
    sock.close()
    assert response.startswith(b"HTTP/1.1 200 OK\r\n"), response[:64]
    assert response.endswith(b"\r\n\r\nok\n"), response[-32:]


def scrape_during_soak(metrics_port, stop_event, observations, failures):
    """Scrape /metrics in a loop while clients hammer the jsonl port: the
    endpoint must answer from the shared poll loop mid-load, and counters
    must be monotone scrape over scrape."""
    last_accepted = -1.0
    try:
        while True:
            samples = scrape_metrics(metrics_port)
            accepted = samples.get("lrsizer_serve_accepted_total", 0.0)
            assert accepted >= last_accepted, (
                "accepted_total went backwards: %r -> %r"
                % (last_accepted, accepted))
            last_accepted = accepted
            observations.append(samples)
            if stop_event.wait(0.2):
                return
    except Exception as exc:  # noqa: BLE001 - report, don't hang the soak
        failures.append("metrics scraper: %s" % exc)


def reconcile_metrics(samples, stats, expected_accepted):
    """Hard-fail unless every series shared between /metrics and the jsonl
    stats response agrees exactly (both read the same registry, and the
    server is quiescent when this runs)."""
    jobs = stats["jobs"]
    expectations = {
        "lrsizer_serve_accepted_total": jobs["accepted"],
        'lrsizer_serve_responses_total{type="result"}': jobs["completed"],
        'lrsizer_serve_responses_total{type="cancelled"}': jobs["cancelled"],
        'lrsizer_serve_responses_total{type="error"}': jobs["errors"],
        "lrsizer_serve_cache_hits_total": jobs["cache_hits"],
        "lrsizer_serve_queue_depth": jobs["queue_depth"],
        "lrsizer_serve_clients": stats["clients"]["active"],
        "lrsizer_cache_entries": stats["cache"]["entries"],
        "lrsizer_cache_evictions_total": stats["cache"]["evictions"],
        "lrsizer_serve_job_latency_seconds_count": stats["latency"]["count"],
        'lrsizer_build_info{version="%s"}' % stats["server"]["version"]: 1,
        "lrsizer_serve_job_latency_seconds_bucket{le=\"+Inf\"}":
            stats["latency"]["count"],
    }
    divergent = {
        series: (samples.get(series), expected)
        for series, expected in expectations.items()
        if samples.get(series) != float(expected)
    }
    assert not divergent, (
        "metrics/stats divergence (series: (scraped, expected)): %r"
        % divergent)
    # Client-side tallies close the loop: the registry's accepted count is
    # exactly the number of size requests the soak clients sent.
    assert samples["lrsizer_serve_accepted_total"] == expected_accepted, (
        samples["lrsizer_serve_accepted_total"], expected_accepted)


def drain(stream):
    while True:
        raw = stream.readline()
        if not raw:
            return
        sys.stderr.write(raw.decode("utf-8", "replace"))


def normalized(job):
    job = dict(job)
    job["name"] = None
    job["cache_hit"] = None
    for key in ("seconds", "stage1_seconds", "stage2_seconds"):
        job[key] = None
    return job


def run_client(index, port, jobs, failures, payloads, lock):
    try:
        sock = socket.create_connection(("127.0.0.1", port), timeout=120)
        sock.settimeout(120)
        reader = sock.makefile("rb")
        hello = json.loads(reader.readline())
        assert hello["type"] == "hello", hello
        assert hello["schema"] == "lrsizer-serve-v2", hello
        # Job ids collide across clients on purpose: the per-client id
        # namespace must keep them independent.
        for k in range(jobs):
            seed = (k % 3) + 1
            request = {
                "type": "size",
                "id": "j%d" % k,
                "seed": seed,
                "input": {"profile": "c17"},
                "options": {"vectors": 8},
            }
            sock.sendall((json.dumps(request) + "\n").encode())
            if k == 1:
                sock.sendall(b'{"type":"cancel","id":"ghost"}\n')
            if k == 2:
                sock.sendall(b'{"type":"stats"}\n')
        results, errors, stats = {}, 0, 0
        while len(results) < jobs or errors < 1 or stats < 1:
            line = reader.readline()
            if not line:
                raise RuntimeError("client %d: EOF before all responses" % index)
            response = json.loads(line)
            rtype = response["type"]
            if rtype == "result":
                results[response["id"]] = response["job"]
            elif rtype == "error":
                assert response.get("id") == "ghost", response
                errors += 1
            elif rtype == "stats":
                stats += 1
            elif rtype not in ("accepted",):
                raise RuntimeError("client %d: unexpected %r" % (index, rtype))
        with lock:
            for job_id, job in results.items():
                seed = (int(job_id[1:]) % 3) + 1
                payloads.setdefault(seed, []).append(normalized(job))
        reader.close()
        sock.close()
    except Exception as exc:  # noqa: BLE001 - report, don't hang the soak
        failures.append("client %d: %s" % (index, exc))


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("lrsizer")
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--jobs", type=int, default=25)
    parser.add_argument("--out", default="serve_soak_stats.json")
    args = parser.parse_args()

    server = subprocess.Popen(
        [
            args.lrsizer, "serve", "--listen", "0", "--metrics-port", "0",
            "--jobs", "2", "--cache-max-entries", "2", "--stats-dump",
            "--quiet",
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    try:
        port, metrics_port = parse_ports(server.stderr)
        stderr_drain = threading.Thread(
            target=drain, args=(server.stderr,), daemon=True)
        stderr_drain.start()
        probe_healthz(metrics_port)

        failures, payloads, lock = [], {}, threading.Lock()
        scraper_stop = threading.Event()
        observations = []
        scraper = threading.Thread(
            target=scrape_during_soak,
            args=(metrics_port, scraper_stop, observations, failures))
        scraper.start()
        clients = [
            threading.Thread(
                target=run_client,
                args=(i, port, args.jobs, failures, payloads, lock))
            for i in range(args.clients)
        ]
        for c in clients:
            c.start()
        for c in clients:
            c.join(timeout=600)
        scraper_stop.set()
        scraper.join(timeout=600)
        assert not failures, failures
        assert observations, "no mid-soak /metrics scrapes landed"

        # Determinism across clients and cache/eviction churn: every payload
        # for a given seed is identical.
        for seed, jobs in sorted(payloads.items()):
            assert len(jobs) == args.clients * (args.jobs // 3 +
                                                (seed - 1 < args.jobs % 3)), (
                seed, len(jobs))
            assert all(j == jobs[0] for j in jobs), (
                "seed %d payloads differ across clients" % seed)

        # Fleet reconciliation from a final auditor connection.
        sock = socket.create_connection(("127.0.0.1", port), timeout=120)
        sock.settimeout(120)
        reader = sock.makefile("rb")
        json.loads(reader.readline())  # hello
        sock.sendall(b'{"type":"stats","id":"audit"}\n')
        stats = json.loads(reader.readline())
        assert stats["type"] == "stats", stats
        total = args.clients * args.jobs
        jobs = stats["jobs"]
        assert jobs["accepted"] == total, jobs
        assert jobs["completed"] == total, jobs
        assert jobs["errors"] == args.clients, jobs
        assert jobs["cancelled"] == 0, jobs
        assert jobs["queue_depth"] == 0, jobs
        assert jobs["cache_hits"] >= 1, jobs
        assert stats["clients"]["active"] == 1, stats["clients"]
        cache = stats["cache"]
        assert cache["entries"] <= 2, cache
        assert cache["evictions"] >= 1, cache
        latency = stats["latency"]
        assert latency["count"] == total, latency
        assert latency["p99_ms"] >= latency["p50_ms"] > 0, latency
        assert stats["server"]["version"].startswith("lrsizer"), stats["server"]
        assert stats["server"]["uptime_s"] > 0, stats["server"]

        # The server is quiescent now: a scrape taken here must agree with
        # the stats response series for series.
        reconcile_metrics(scrape_metrics(metrics_port), stats, total)

        with open(args.out, "w") as f:
            json.dump(stats, f, indent=2, sort_keys=True)
        print("serve soak: %d clients x %d jobs OK (%d mid-soak scrapes); "
              "stats saved to %s"
              % (args.clients, args.jobs, len(observations), args.out))

        sock.sendall(b'{"type":"shutdown"}\n')
        reader.close()
        sock.close()
        server.wait(timeout=120)
        assert server.returncode == 0, server.returncode
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()


if __name__ == "__main__":
    main()
