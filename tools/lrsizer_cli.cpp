// lrsizer — command-line driver for the two-stage sizing flow.
//
//   lrsizer run <input>                  size one circuit
//   lrsizer batch --profiles all --jobs 8    size many circuits in parallel
//   lrsizer sweep --noise 0.05:0.25:0.05     noise-bound sweep
//   lrsizer profiles                     list the built-in Table-1 profiles
//   lrsizer version                      print the version string
//
// <input> is a `.bench` file path or a built-in profile name ("c17",
// "c432" ... "c7552"; profile inputs are synthesized with the Table-1
// generator). Reports go to stdout plus optional --json / --csv files;
// sized netlists are emitted as `.bench` with `# size` annotation comments
// (still parseable by any .bench reader, including `lrsizer run` itself —
// and reusable as `--warm-start` seeds).
//
// All sizing goes through api::SizingSession (via runtime::run_batch):
// `--progress` taps the per-iteration observer, Ctrl-C requests cooperative
// cancellation — in-flight jobs keep their best partial solution and the
// reports are still written (exit code 130).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <stop_token>
#include <string>
#include <thread>
#include <vector>

#include "core/flow.hpp"
#include "core/report.hpp"
#include "eco/buffering.hpp"
#include "fault/fault.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/bench_writer.hpp"
#include "netlist/generator.hpp"
#include "netlist/iscas_profiles.hpp"
#include "obs/trace.hpp"
#include "runtime/batch.hpp"
#include "runtime/cache.hpp"
#include "serve/listen.hpp"
#include "serve/server.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace {

using namespace lrsizer;

// Injected by tools/CMakeLists.txt from the project() version.
#ifndef LRSIZER_VERSION
#define LRSIZER_VERSION "0.0.0-dev"
#endif
constexpr const char* kVersion = "lrsizer " LRSIZER_VERSION;

constexpr const char* kUsage = R"(usage:
  lrsizer run <input> [options]               size one circuit
  lrsizer batch [inputs...] [options]         size many circuits in parallel
  lrsizer sweep --noise LO:HI:STEP [options]  sweep the noise-bound factor
  lrsizer serve [options]                     long-lived jsonl sizing service
  lrsizer merge <reports...> [options]        merge sharded sweep reports
  lrsizer profiles                            list built-in Table-1 profiles
  lrsizer version | --version                 print the version string
  lrsizer --help

inputs:
  a `.bench` file path, or a built-in profile name (c17, c432 ... c7552);
  profile inputs are synthesized to the paper's Table-1 #G/#W.

options:
  --profiles LIST   (batch) comma-separated profile names, or "all"
  --profile NAME    (sweep) circuit to sweep (default c432)
  --noise LO:HI:STEP (sweep) inclusive range of noise-bound factors
  --shard K/N       (batch/sweep) run only the global job list's indices
                    congruent to K mod N; the JSON report is annotated so
                    `lrsizer merge` can reassemble the full sweep
  --jobs N          concurrent jobs (default: cores / --threads)
  --threads N       kernel threads per job for the sizing stage (default 1;
                    0 = hardware concurrency; results are bit-identical)
  --sweep MODE      LRS sweep strategy: dense (paper-exact, the default) or
                    worklist (frontier-driven incremental passes — skips
                    nodes whose resize inputs did not move; converges to the
                    same solution within tolerance but is not bit-identical
                    to dense)
  --seed N          generator/elaboration seed (default 1)
  --vectors N       stage-1 simulation vectors (default 32)
  --no-woss         keep the initial track order (skip stage-1 WOSS)
  --delay-bound F   A0 = F x initial delay  (default 1.00)
  --power-bound F   P0 = F x initial power  (default 0.15)
  --noise-bound F   X0 = F x initial noise  (default 0.10)
  --warm-start FILE (run) seed sizes from a sized .bench's # size annotations
  --buffer-long-wires [UM]  (run/batch) pre-pass: split every net whose
                    routed wire length exceeds UM um (default 1500) with a
                    chain of optimally sized repeaters (Orion closed-form
                    k/h) before sizing; add --shielded for the staggered-
                    neighbor coupling coefficients
  --shielded        (with --buffer-long-wires) assume shielded/staggered
                    neighbor switching (K_k=0.57, K_h=1.5 instead of the
                    unshielded worst case 1.51/2.2)
  --cache-dir DIR   persist completed results as lrsizer-cache-v1 JSON in
                    DIR and answer identical jobs from there (run/batch/
                    sweep/serve); without it batch/serve still dedupe
                    in-memory
  --cache-warm      on a cache miss, warm-start from a cached result with
                    the same circuit but different bounds/solver options
                    (faster, but not bit-identical to a cold run)
  --eco             (serve) on a cache miss, ECO warm-start from the cached
                    base sharing the most output cones with the request
                    (docs/ECO.md; same determinism trade-off as
                    --cache-warm). Requests naming "eco_base" use their
                    named base even without this flag.
  --cache-max-entries N  keep at most N completed results in the cache,
                    LRU-evicted (and unlinked from --cache-dir); 0 disables
                    result storage (default: unlimited)
  --cache-max-bytes N    cap the cache's accounted result bytes likewise
  --trace FILE      (run/batch/sweep) record a flow trace — one span per
                    stage, OGWS iteration and LRS pass — and write it as
                    Chrome trace-event JSON (lrsizer-trace-v1; open in
                    Perfetto / chrome://tracing). Results are bit-identical
                    with tracing on or off.
  --listen PORT     (serve) accept lrsizer-serve-v3 over TCP on
                    127.0.0.1:PORT instead of stdin/stdout; any number of
                    clients may connect concurrently (0 = pick an ephemeral
                    port, announced on stderr)
  --metrics-port N  (serve, with --listen) also answer HTTP GET /metrics
                    (Prometheus text format) and /healthz on 127.0.0.1:N
                    from the same event loop (0 = ephemeral, announced on
                    stderr; /healthz answers 503 "draining" after SIGTERM)
  --max-pending N   (serve) reject size requests beyond N unfinished jobs
                    with an "overloaded" error carrying a retry_after_ms
                    hint (backpressure; default: unbounded)
  --max-pending-per-client N  (serve) cap one client's unfinished jobs at N
                    so a single aggressive client cannot monopolize the
                    queue (rejected with "overloaded"; default: unbounded)
  --max-queue-cost N  (serve) admit a size request only while the summed
                    logic-gate count of unfinished jobs stays within N — a
                    cost-aware budget, so one c7552 counts like many c17s
                    (an empty queue always admits; default: unbounded)
  --default-deadline-ms N  (serve) deadline for size requests that carry no
                    "deadline_ms" of their own; a job cut by its deadline
                    answers with its best partial result, marked
                    "timeout": true (0 = no default deadline)
  --fault-inject POINT:TRIGGER  arm a deterministic fault-injection point
                    (testing/chaos drills; repeatable). TRIGGER is one of
                    always | nth=N | every=N | p=P[@SEED]. Points:
                    cache.read, cache.rename, cache.write, json.parse,
                    session.alloc, socket.write. $LRSIZER_FAULT adds
                    comma-separated specs the same way (docs/RELIABILITY.md)
  --stats-dump      (serve) print the final stats (jobs, cache, latency
                    percentiles — the stats response's content) on shutdown
  --progress        per-OGWS-iteration progress lines on stderr
  --out FILE        (run) write the sized .bench here
  --out-dir DIR     (batch/sweep) write one sized .bench per job into DIR
  --json FILE       write the JSON report ("-" for stdout)
  --csv FILE        write the CSV report ("-" for stdout)
  --quiet           errors only
  --verbose         per-job progress on stderr

serve reads newline-delimited JSON requests (docs/SERVING.md) and streams
accepted / progress / result / cancelled / stats / error responses;
identical jobs are answered from the result cache byte-identically
without re-running.

Ctrl-C cancels cooperatively: running jobs return their best partial
solution, reports are still written, and the exit code is 130.

SIGTERM asks `serve` to drain gracefully instead: new work is refused
with a "shutdown" error, /healthz turns 503, in-flight jobs run to
completion (or to their deadlines), and the process exits 0.
)";

struct CliOptions {
  std::string command;
  std::vector<std::string> inputs;
  std::string profiles;
  std::string sweep_profile = "c432";
  std::string sweep_range;
  std::uint64_t seed = 1;
  std::int32_t vectors = 32;
  bool use_woss = true;
  bool progress = false;
  double delay_bound = 1.0;
  double power_bound = 0.15;
  double noise_bound = 0.10;
  int jobs = 0;
  int threads = 1;
  core::SweepMode sweep = core::SweepMode::kDense;
  int shard_index = 0;
  int shard_count = 0;   ///< 0 = unsharded
  int listen_port = -1;  ///< -1 = stdin/stdout; 0 = ephemeral TCP port
  int metrics_port = -1;  ///< -1 = no metrics endpoint; 0 = ephemeral
  int max_pending = 0;
  int max_pending_per_client = 0;
  std::int64_t max_queue_cost = 0;
  std::int64_t default_deadline_ms = 0;
  std::vector<std::string> fault_specs;
  bool cache_warm = false;
  bool eco = false;
  bool stats_dump = false;
  double buffer_long_wires = 0.0;  ///< threshold in um; 0 = pre-pass off
  bool shielded = false;
  std::size_t cache_max_entries = runtime::CacheLimits::kUnlimited;
  std::size_t cache_max_bytes = runtime::CacheLimits::kUnlimited;
  std::string cache_dir;
  std::string warm_start_path;
  std::string trace_path;
  std::string out_path;
  std::string out_dir;
  std::string json_path;
  std::string csv_path;
};

// Ctrl-C / SIGTERM request cooperative cancellation through this stop
// source. With no stop_callbacks registered, request_stop() is a plain
// atomic state transition — safe enough from a signal handler — and the
// sizing sessions poll the token once per OGWS iteration.
std::stop_source g_stop;  // NOLINT(cert-err58-cpp)

extern "C" void handle_interrupt(int) { g_stop.request_stop(); }

// For `serve`, SIGTERM means "drain": stop accepting work, let in-flight
// jobs finish (or hit their deadlines), then exit 0 — the orchestrator
// handshake. cmd_serve re-points SIGTERM here; a watcher thread turns the
// flag into Server::begin_drain() (not signal-safe to call directly).
std::atomic<bool> g_drain{false};

extern "C" void handle_terminate(int) {
  g_drain.store(true, std::memory_order_relaxed);
}

[[noreturn]] void fail(const std::string& message) {
  std::cerr << "lrsizer: " << message << "\n\n" << kUsage;
  std::exit(1);
}

double parse_double(const std::string& flag, const std::string& value) {
  try {
    std::size_t end = 0;
    const double d = std::stod(value, &end);
    if (end != value.size()) throw std::invalid_argument(value);
    return d;
  } catch (const std::exception&) {
    fail("expected a number after " + flag + ", got '" + value + "'");
  }
}

long parse_long(const std::string& flag, const std::string& value) {
  try {
    std::size_t end = 0;
    const long v = std::stol(value, &end);
    if (end != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    fail("expected an integer after " + flag + ", got '" + value + "'");
  }
}

CliOptions parse_args(int argc, char** argv) {
  CliOptions cli;
  if (argc < 2) fail("missing command");
  const std::string first = argv[1];
  if (first == "--help" || first == "-h") {
    std::cout << kUsage;
    std::exit(0);
  }
  if (first == "--version") {
    std::cout << kVersion << "\n";
    std::exit(0);
  }
  cli.command = first;

  auto next_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) fail(std::string("missing value after ") + argv[i]);
    return argv[++i];
  };

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--profiles") cli.profiles = next_value(i);
    else if (arg == "--profile") cli.sweep_profile = next_value(i);
    else if (arg == "--noise") cli.sweep_range = next_value(i);
    else if (arg == "--jobs") cli.jobs = static_cast<int>(parse_long(arg, next_value(i)));
    else if (arg == "--threads") {
      cli.threads = static_cast<int>(parse_long(arg, next_value(i)));
      if (cli.threads < 0) fail("--threads must be >= 0 (0 = hardware concurrency)");
    }
    else if (arg == "--sweep") {
      const std::string value = next_value(i);
      if (value == "dense") cli.sweep = core::SweepMode::kDense;
      else if (value == "worklist") cli.sweep = core::SweepMode::kWorklist;
      else fail("--sweep must be dense or worklist");
    }
    else if (arg == "--shard") {
      const std::string value = next_value(i);
      const std::size_t slash = value.find('/');
      if (slash == std::string::npos) fail("--shard expects K/N");
      cli.shard_index = static_cast<int>(parse_long(arg, value.substr(0, slash)));
      cli.shard_count = static_cast<int>(parse_long(arg, value.substr(slash + 1)));
      if (cli.shard_count < 1 || cli.shard_index < 0 ||
          cli.shard_index >= cli.shard_count) {
        fail("--shard K/N needs 0 <= K < N");
      }
    }
    else if (arg == "--cache-dir") cli.cache_dir = next_value(i);
    else if (arg == "--cache-warm") cli.cache_warm = true;
    else if (arg == "--eco") cli.eco = true;
    else if (arg == "--buffer-long-wires") {
      // The threshold is optional: consume the next token only when it
      // parses fully as a number, so `--buffer-long-wires c432` still
      // treats c432 as the input.
      cli.buffer_long_wires = 1500.0;
      if (i + 1 < argc) {
        char* end = nullptr;
        const double v = std::strtod(argv[i + 1], &end);
        if (end != argv[i + 1] && *end == '\0') {
          cli.buffer_long_wires = v;
          ++i;
        }
      }
      if (cli.buffer_long_wires <= 0.0) {
        fail("--buffer-long-wires threshold must be > 0 um");
      }
    }
    else if (arg == "--shielded") cli.shielded = true;
    else if (arg == "--cache-max-entries") {
      const long v = parse_long(arg, next_value(i));
      if (v < 0) fail("--cache-max-entries must be >= 0");
      cli.cache_max_entries = static_cast<std::size_t>(v);
    }
    else if (arg == "--cache-max-bytes") {
      const long v = parse_long(arg, next_value(i));
      if (v < 0) fail("--cache-max-bytes must be >= 0");
      cli.cache_max_bytes = static_cast<std::size_t>(v);
    }
    else if (arg == "--stats-dump") cli.stats_dump = true;
    else if (arg == "--listen") {
      cli.listen_port = static_cast<int>(parse_long(arg, next_value(i)));
      if (cli.listen_port < 0 || cli.listen_port > 65535) {
        fail("--listen expects a port in 0..65535 (0 = ephemeral)");
      }
    }
    else if (arg == "--metrics-port") {
      cli.metrics_port = static_cast<int>(parse_long(arg, next_value(i)));
      if (cli.metrics_port < 0 || cli.metrics_port > 65535) {
        fail("--metrics-port expects a port in 0..65535 (0 = ephemeral)");
      }
    }
    else if (arg == "--trace") cli.trace_path = next_value(i);
    else if (arg == "--max-pending") {
      cli.max_pending = static_cast<int>(parse_long(arg, next_value(i)));
      if (cli.max_pending < 0) fail("--max-pending must be >= 0");
    }
    else if (arg == "--max-pending-per-client") {
      cli.max_pending_per_client = static_cast<int>(parse_long(arg, next_value(i)));
      if (cli.max_pending_per_client < 0) {
        fail("--max-pending-per-client must be >= 0");
      }
    }
    else if (arg == "--max-queue-cost") {
      cli.max_queue_cost = parse_long(arg, next_value(i));
      if (cli.max_queue_cost < 0) fail("--max-queue-cost must be >= 0");
    }
    else if (arg == "--default-deadline-ms") {
      cli.default_deadline_ms = parse_long(arg, next_value(i));
      if (cli.default_deadline_ms < 0) fail("--default-deadline-ms must be >= 0");
    }
    else if (arg == "--fault-inject") cli.fault_specs.push_back(next_value(i));
    else if (arg == "--seed") cli.seed = static_cast<std::uint64_t>(parse_long(arg, next_value(i)));
    else if (arg == "--vectors") cli.vectors = static_cast<std::int32_t>(parse_long(arg, next_value(i)));
    else if (arg == "--no-woss") cli.use_woss = false;
    else if (arg == "--progress") cli.progress = true;
    else if (arg == "--warm-start") cli.warm_start_path = next_value(i);
    else if (arg == "--delay-bound") cli.delay_bound = parse_double(arg, next_value(i));
    else if (arg == "--power-bound") cli.power_bound = parse_double(arg, next_value(i));
    else if (arg == "--noise-bound") cli.noise_bound = parse_double(arg, next_value(i));
    else if (arg == "--out") cli.out_path = next_value(i);
    else if (arg == "--out-dir") cli.out_dir = next_value(i);
    else if (arg == "--json") cli.json_path = next_value(i);
    else if (arg == "--csv") cli.csv_path = next_value(i);
    else if (arg == "--quiet") util::set_log_level(util::LogLevel::kError);
    else if (arg == "--verbose" || arg == "-v") util::set_log_level(util::LogLevel::kDebug);
    else if (!arg.empty() && arg[0] == '-') fail("unknown option '" + arg + "'");
    else cli.inputs.push_back(arg);
  }
  return cli;
}

runtime::CacheLimits cache_limits(const CliOptions& cli) {
  runtime::CacheLimits limits;
  limits.max_entries = cli.cache_max_entries;
  limits.max_bytes = cli.cache_max_bytes;
  return limits;
}

core::FlowOptions flow_options(const CliOptions& cli) {
  core::FlowOptions options;
  options.elab.seed = cli.seed;  // wire lengths/driver strengths for .bench inputs
  options.num_vectors = cli.vectors;
  options.use_woss = cli.use_woss;
  options.bound_factors.delay = cli.delay_bound;
  options.bound_factors.power = cli.power_bound;
  options.bound_factors.noise = cli.noise_bound;
  options.threads = cli.threads;
  options.ogws.lrs.sweep = cli.sweep;
  return options;
}

bool is_known_profile(const std::string& name) {
  if (name == "c17") return true;
  for (const auto& profile : netlist::iscas85_profiles()) {
    if (profile.name == name) return true;
  }
  return false;
}

/// File stem without directory or extension ("path/c432.bench" -> "c432").
std::string input_stem(const std::string& input) {
  return std::filesystem::path(input).stem().string();
}

runtime::BatchJob load_job(const std::string& input, const CliOptions& cli) {
  runtime::BatchJob job;
  job.options = flow_options(cli);
  job.seed = cli.seed;
  const bool looks_like_file =
      input.find('/') != std::string::npos || input.find(".bench") != std::string::npos;
  if (looks_like_file || std::filesystem::exists(input)) {
    std::ifstream in(input);
    if (!in) fail("cannot open '" + input + "'");
    try {
      job.netlist = netlist::parse_bench(in);
    } catch (const netlist::BenchParseError& e) {
      std::cerr << "lrsizer: " << input << ": " << e.what() << "\n";
      std::exit(1);
    }
    job.name = input_stem(input);
    return job;
  }
  if (input == "c17") {
    job.netlist = netlist::parse_bench_string(netlist::kIscas85C17);
    job.name = "c17";
    return job;
  }
  if (!is_known_profile(input)) {
    fail("'" + input + "' is neither a readable .bench file nor a known profile");
  }
  return runtime::make_profile_job(input, cli.seed, job.options);
}

/// Load `# size` annotations from a previously sized .bench for warm-starting.
std::vector<std::pair<std::int32_t, double>> load_warm_sizes(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open warm-start file '" + path + "'");
  std::vector<std::pair<std::int32_t, double>> sizes;
  try {
    sizes = netlist::read_size_annotations(in);
  } catch (const netlist::BenchParseError& e) {
    fail(path + ": " + e.what());
  }
  if (sizes.empty()) {
    fail("warm-start file '" + path +
         "' has no '# size' annotations (was it written by lrsizer --out?)");
  }
  return sizes;
}

/// Shared batch options: worker count, Ctrl-C token, result cache, optional
/// --progress observer (one line per OGWS iteration; a single fprintf per
/// event keeps concurrent workers' lines whole).
runtime::BatchOptions make_batch_options(const CliOptions& cli, int jobs,
                                         runtime::ResultCache* cache,
                                         obs::TraceSession* trace = nullptr) {
  runtime::BatchOptions options;
  options.jobs = jobs;
  options.stop = g_stop.get_token();
  options.cache = cache;
  options.cache_warm = cli.cache_warm;
  options.trace = trace;
  if (cli.progress) {
    options.observer = [](const std::string& job, const core::OgwsIterate& it) {
      std::fprintf(stderr,
                   "[%s] k=%-4d area=%-10.1f dual=%-10.1f gap=%6.2f%% viol=%6.2f%%\n",
                   job.c_str(), it.k, it.area, it.dual, 100.0 * it.rel_gap,
                   100.0 * it.max_violation);
    };
  }
  return options;
}

/// --trace plumbing: a TraceSession when the flag was given, else null (the
/// flow's tracing hooks are no-ops on null).
std::unique_ptr<obs::TraceSession> make_trace(const CliOptions& cli) {
  if (cli.trace_path.empty()) return nullptr;
  return std::make_unique<obs::TraceSession>();
}

/// Write the collected trace next to the other reports; like them, a failed
/// write is a hard error (the user asked for the artifact).
void write_trace(const obs::TraceSession* trace, const CliOptions& cli) {
  if (!trace) return;
  std::string error;
  if (!trace->write_file(cli.trace_path, &error)) {
    std::cerr << "lrsizer: --trace: " << error << "\n";
    std::exit(2);
  }
  std::fprintf(stderr, "lrsizer: wrote trace (%zu spans) to %s\n",
               trace->span_count(), cli.trace_path.c_str());
}

/// Sized netlist as .bench text: the round-trippable netlist followed by
/// `# size <node> <kind> <net> <value>` comment lines (ignored by parsers).
std::string sized_bench_text(const runtime::JobOutcome& outcome) {
  std::ostringstream header;
  const core::FlowSummary& s = outcome.summary;
  header << "sized by " << kVersion << ": " << outcome.name << " seed "
         << outcome.seed << "; " << s.iterations << " iterations, final delay "
         << s.final_metrics.delay_s * 1e12 << " ps, noise "
         << s.final_metrics.noise_f * 1e12 << " pF, area "
         << s.final_metrics.area_um2 << " um2";
  std::string text = netlist::to_bench_string(outcome.netlist, header.str());

  std::ostringstream sizes;
  sizes << "#\n# component sizes: node kind net size\n";
  const netlist::Circuit& circuit = outcome.flow->circuit;
  sizes.precision(17);
  for (netlist::NodeId v = circuit.first_component(); v < circuit.end_component();
       ++v) {
    const std::int32_t net = outcome.flow->net_of_node[static_cast<std::size_t>(v)];
    const std::string& net_name =
        net >= 0 ? outcome.netlist.gate(net).name : std::string("?");
    sizes << "# size " << v << ' ' << (circuit.is_gate(v) ? "gate" : "wire") << ' '
          << net_name << ' ' << circuit.size(v) << '\n';
  }
  return text + sizes.str();
}

void write_file(const std::string& path, const std::string& content) {
  if (path == "-") {
    std::cout << content;
    return;
  }
  std::ofstream out(path);
  if (!out) fail("cannot write '" + path + "'");
  out << content;
}

void write_reports(const runtime::BatchResult& batch, const CliOptions& cli) {
  if (!cli.json_path.empty()) {
    write_file(cli.json_path, runtime::batch_json(batch).dump(2) + "\n");
  }
  if (!cli.csv_path.empty()) write_file(cli.csv_path, runtime::batch_csv(batch));
  if (!cli.out_dir.empty()) {
    std::filesystem::create_directories(cli.out_dir);
    std::size_t skipped_cached = 0;
    for (const auto& outcome : batch.jobs) {
      // Cross-batch cache hits carry a summary but no FlowResult, so there
      // is no sized netlist to write (the run that populated the cache
      // wrote it).
      if (outcome.ok && !outcome.flow) {
        ++skipped_cached;
        continue;
      }
      if (!outcome.ok) continue;
      const auto path =
          std::filesystem::path(cli.out_dir) / (outcome.name + ".bench");
      write_file(path.string(), sized_bench_text(outcome));
    }
    if (skipped_cached > 0) {
      std::fprintf(stderr,
                   "lrsizer: --out-dir: %zu cache-hit job(s) have no sized "
                   ".bench to write (the runs that populated the cache wrote "
                   "them; re-run without --cache-dir to regenerate)\n",
                   skipped_cached);
    }
  }
}

/// --buffer-long-wires: run the repeater-insertion pre-pass on every job's
/// netlist before sizing (eco/buffering.hpp). The transform is
/// deterministic, so cache keys stay meaningful: the buffered netlist IS
/// the job's input.
void apply_buffering(std::vector<runtime::BatchJob>* jobs,
                     const CliOptions& cli) {
  if (cli.buffer_long_wires <= 0.0) return;
  eco::BufferingOptions buffering;
  buffering.length_threshold_um = cli.buffer_long_wires;
  buffering.shielded = cli.shielded;
  for (auto& job : *jobs) {
    eco::BufferingResult result =
        eco::buffer_long_wires(job.netlist, job.options, buffering);
    if (result.repeaters > 0) {
      std::fprintf(stderr,
                   "lrsizer: %s: inserted %lld repeater(s) across %zu long "
                   "net(s) (> %.0f um)\n",
                   job.name.c_str(), static_cast<long long>(result.repeaters),
                   result.nets.size(), cli.buffer_long_wires);
    }
    job.netlist = std::move(result.netlist);
  }
}

/// --shard K/N: keep only the global job list's indices ≡ K (mod N). The
/// filter runs on the fully assembled, deterministic job list, so N shard
/// runs partition exactly the jobs one unsharded run would execute.
std::vector<runtime::BatchJob> apply_shard(std::vector<runtime::BatchJob> jobs,
                                           const CliOptions& cli) {
  if (cli.shard_count == 0) return jobs;
  std::vector<runtime::BatchJob> kept;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (i % static_cast<std::size_t>(cli.shard_count) ==
        static_cast<std::size_t>(cli.shard_index)) {
      kept.push_back(std::move(jobs[i]));
    }
  }
  return kept;
}

void print_batch_table(const runtime::BatchResult& batch) {
  util::TextTable table({"job", "#G", "#W", "ite", "noise F(pF)", "delay F(ps)",
                         "pow F(mW)", "area F(um2)", "gap%", "time(s)", "mem(KB)"});
  for (const auto& job : batch.jobs) {
    if (!job.ok) {
      table.add_row({job.name, "-", "-", "-",
                     job.cancelled ? "CANCELLED: " + job.error : "FAILED: " + job.error,
                     "", "", "", "", util::TextTable::num(job.seconds, 2), ""});
      continue;
    }
    const core::FlowSummary& s = job.summary;
    table.add_row(
        {job.cancelled ? job.name + " (partial)" : job.name,
         util::TextTable::integer(s.num_gates),
         util::TextTable::integer(s.num_wires),
         util::TextTable::integer(s.iterations),
         util::TextTable::num(s.final_metrics.noise_f * 1e12, 2),
         util::TextTable::num(s.final_metrics.delay_s * 1e12, 1),
         util::TextTable::num(s.final_metrics.power_w * 1e3, 2),
         util::TextTable::num(s.final_metrics.area_um2, 0),
         util::TextTable::num(100.0 * s.rel_gap, 2),
         util::TextTable::num(job.seconds, 2),
         util::TextTable::integer(static_cast<long long>(s.memory_bytes / 1024))});
  }
  table.print(std::cout);
  std::printf(
      "\n%zu job(s), %d worker(s): wall %.2f s, cpu %.2f s, speedup %.2fx, "
      "steals %lld, peak mem %zu KB\n",
      batch.jobs.size(), batch.num_workers, batch.wall_seconds,
      batch.total_job_seconds, batch.speedup(),
      static_cast<long long>(batch.steals), batch.peak_memory_bytes / 1024);
  if (batch.num_cancelled() > 0) {
    std::printf("%zu job(s) cancelled — partial results above/in the reports\n",
                batch.num_cancelled());
  }
  if (batch.num_cache_hits() > 0) {
    std::printf("%zu job(s) answered from cache without re-running\n",
                batch.num_cache_hits());
  }
}

/// Reports are written even for cancelled batches (the partial-report
/// contract); the exit code then follows shell convention for SIGINT.
int finish(const runtime::BatchResult& batch, const CliOptions& cli) {
  write_reports(batch, cli);
  if (batch.num_failed() > 0) return 2;
  return batch.num_cancelled() > 0 ? 130 : 0;
}

// ---- commands ---------------------------------------------------------------

int cmd_run(const CliOptions& cli) {
  if (cli.inputs.size() != 1) fail("run expects exactly one input");
  if (cli.shard_count > 0) fail("--shard only applies to batch/sweep");
  if (cli.eco) fail("--eco only applies to serve");
  std::vector<runtime::BatchJob> jobs;
  jobs.push_back(load_job(cli.inputs[0], cli));
  apply_buffering(&jobs, cli);
  if (!cli.warm_start_path.empty()) {
    jobs[0].warm_sizes = load_warm_sizes(cli.warm_start_path);
  }
  // A single run only benefits from the cache when it persists across
  // processes; without --cache-dir the run stays cache-free.
  runtime::ResultCache cache(cli.cache_dir, cache_limits(cli));
  const auto trace = make_trace(cli);
  const auto batch = runtime::run_batch(
      std::move(jobs),
      make_batch_options(cli, 1, cli.cache_dir.empty() ? nullptr : &cache,
                         trace.get()));
  write_trace(trace.get(), cli);
  const auto& outcome = batch.jobs[0];
  if (!outcome.ok) {
    std::cerr << "lrsizer: job " << (outcome.cancelled ? "cancelled" : "failed")
              << ": " << outcome.error << "\n";
    // The partial-report contract holds even without a result: requested
    // report files are still written (with the error/cancelled markers).
    write_reports(batch, cli);
    return outcome.cancelled ? 130 : 2;
  }

  const core::FlowSummary& s = outcome.summary;
  util::TextTable table({"metric", "bound", "init", "final"});
  table.add_row({"noise (pF)", util::TextTable::num(s.bound_noise_f * 1e12, 3),
                 util::TextTable::num(s.init_metrics.noise_f * 1e12, 3),
                 util::TextTable::num(s.final_metrics.noise_f * 1e12, 3)});
  table.add_row({"delay (ps)", util::TextTable::num(s.bound_delay_s * 1e12, 1),
                 util::TextTable::num(s.init_metrics.delay_s * 1e12, 1),
                 util::TextTable::num(s.final_metrics.delay_s * 1e12, 1)});
  table.add_row({"cap (pF)", util::TextTable::num(s.bound_cap_f * 1e12, 3),
                 util::TextTable::num(s.init_metrics.cap_f * 1e12, 3),
                 util::TextTable::num(s.final_metrics.cap_f * 1e12, 3)});
  table.add_row({"area (um2)", "-", util::TextTable::num(s.init_metrics.area_um2, 0),
                 util::TextTable::num(s.final_metrics.area_um2, 0)});
  std::printf("%s: #G=%d #W=%d, %s after %d iterations (gap %.2f%%)\n",
              outcome.name.c_str(), s.num_gates, s.num_wires,
              s.cancelled   ? "cancelled (partial result)"
              : s.converged ? "converged"
                            : "stopped",
              s.iterations, 100.0 * s.rel_gap);
  table.print(std::cout);
  std::printf("stage1 %.3f s, stage2 %.3f s, mem %zu KB\n", s.stage1_seconds,
              s.stage2_seconds, s.memory_bytes / 1024);

  if (outcome.cache_hit) {
    std::printf("(answered from cache: %zu cache hit(s))\n",
                batch.num_cache_hits());
  }
  if (!cli.out_path.empty()) {
    if (outcome.flow) {
      write_file(cli.out_path, sized_bench_text(outcome));
    } else {
      std::cerr << "lrsizer: --out skipped: the cached result carries no "
                   "netlist (the run that populated the cache wrote it)\n";
    }
  }
  return finish(batch, cli);
}

int cmd_batch(const CliOptions& cli) {
  // Warm sizes are node-id-keyed against one specific elaborated circuit;
  // silently reusing them across a heterogeneous batch would mislead.
  if (!cli.warm_start_path.empty()) fail("--warm-start only applies to 'run'");
  if (cli.eco) fail("--eco only applies to serve");
  std::vector<runtime::BatchJob> jobs;
  if (!cli.profiles.empty()) {
    std::vector<std::string> names;
    if (cli.profiles == "all") {
      for (const auto& profile : netlist::iscas85_profiles()) {
        names.push_back(profile.name);
      }
    } else {
      std::stringstream ss(cli.profiles);
      std::string name;
      while (std::getline(ss, name, ',')) {
        if (!name.empty()) names.push_back(name);
      }
    }
    for (const auto& name : names) jobs.push_back(load_job(name, cli));
  }
  for (const auto& input : cli.inputs) jobs.push_back(load_job(input, cli));
  if (jobs.empty()) fail("batch needs --profiles and/or input files");
  apply_buffering(&jobs, cli);
  jobs = apply_shard(std::move(jobs), cli);

  // Batches always dedupe through a cache (memory-only without --cache-dir):
  // byte-identical jobs in one sweep run once (satisfying `cache_hits` in
  // the rollup) and identical jobs across runs hit the disk cache.
  runtime::ResultCache cache(cli.cache_dir, cache_limits(cli));
  const auto trace = make_trace(cli);
  auto batch = runtime::run_batch(
      std::move(jobs), make_batch_options(cli, cli.jobs, &cache, trace.get()));
  write_trace(trace.get(), cli);
  batch.shard_index = cli.shard_index;
  batch.shard_count = cli.shard_count;
  print_batch_table(batch);
  return finish(batch, cli);
}

int cmd_sweep(const CliOptions& cli) {
  if (!cli.warm_start_path.empty()) fail("--warm-start only applies to 'run'");
  if (cli.buffer_long_wires > 0.0) {
    fail("--buffer-long-wires only applies to run/batch");
  }
  if (cli.sweep_range.empty()) fail("sweep needs --noise LO:HI:STEP");
  double lo = 0.0, hi = 0.0, step = 0.0;
  {
    std::stringstream ss(cli.sweep_range);
    std::string part;
    std::vector<std::string> parts;
    while (std::getline(ss, part, ':')) parts.push_back(part);
    if (parts.size() != 3) fail("--noise expects LO:HI:STEP");
    lo = parse_double("--noise", parts[0]);
    hi = parse_double("--noise", parts[1]);
    step = parse_double("--noise", parts[2]);
    if (step <= 0.0 || hi < lo) fail("--noise range must have step > 0 and HI >= LO");
  }
  const std::string base =
      cli.inputs.empty() ? cli.sweep_profile : cli.inputs[0];
  // Load/synthesize the input once; every sweep point copies it and varies
  // only the noise-bound factor.
  const runtime::BatchJob base_job = load_job(base, cli);

  std::vector<runtime::BatchJob> jobs;
  // Half a step of slack so floating-point accumulation still includes HI.
  for (double factor = lo; factor <= hi + step / 2; factor += step) {
    runtime::BatchJob job = base_job;
    job.options.bound_factors.noise = factor;
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), "@noise%.4g", factor);
    job.name += suffix;
    jobs.push_back(std::move(job));
  }
  jobs = apply_shard(std::move(jobs), cli);

  runtime::ResultCache cache(cli.cache_dir, cache_limits(cli));
  const auto trace = make_trace(cli);
  auto batch = runtime::run_batch(
      std::move(jobs), make_batch_options(cli, cli.jobs, &cache, trace.get()));
  write_trace(trace.get(), cli);
  batch.shard_index = cli.shard_index;
  batch.shard_count = cli.shard_count;
  print_batch_table(batch);
  return finish(batch, cli);
}

int cmd_serve(const CliOptions& cli) {
  if (cli.metrics_port >= 0 && cli.listen_port < 0) {
    fail("--metrics-port requires --listen");
  }
  if (cli.buffer_long_wires > 0.0) {
    fail("--buffer-long-wires only applies to run/batch");
  }
  runtime::ResultCache cache(cli.cache_dir, cache_limits(cli));
  serve::ServerOptions options;
  // Worker default mirrors run_batch's jobs × threads split.
  const int hw =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  const int threads = cli.threads <= 0 ? hw : cli.threads;
  options.jobs = cli.jobs > 0 ? cli.jobs : std::max(1, hw / threads);
  options.base_options = flow_options(cli);
  options.cache = &cache;
  options.cache_warm = cli.cache_warm;
  options.eco = cli.eco;
  options.max_pending = cli.max_pending;
  options.max_pending_per_client = cli.max_pending_per_client;
  options.max_queue_cost = cli.max_queue_cost;
  options.default_deadline_ms = cli.default_deadline_ms;
  options.version = kVersion;

  // main() pointed SIGTERM at the Ctrl-C handler; for serve it means
  // "drain gracefully" instead (see the usage text).
  std::signal(SIGTERM, handle_terminate);

  // The server registers stop_callbacks on its token; g_stop must stay
  // callback-free so request_stop() remains safe inside the signal handler
  // (see its comment). A watcher thread bridges the signal flags onto the
  // server — hard stop (Ctrl-C) through the server's own stop source,
  // drain (SIGTERM) through begin_drain() — running both on a normal
  // thread. The watcher keeps polling after a drain begins so Ctrl-C can
  // still cut a drain short.
  std::stop_source serve_stop;
  options.stop = serve_stop.get_token();
  std::atomic<bool> serving{true};
  std::atomic<serve::Server*> drain_target{nullptr};
  std::thread watcher([&serve_stop, &serving, &drain_target] {
    while (serving.load(std::memory_order_relaxed)) {
      if (g_stop.stop_requested()) {
        serve_stop.request_stop();
        break;
      }
      if (g_drain.load(std::memory_order_relaxed)) {
        serve::Server* server = drain_target.load(std::memory_order_acquire);
        if (server != nullptr) server->begin_drain();  // idempotent
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });
  const auto stop_watcher = [&serving, &drain_target, &watcher] {
    serving.store(false, std::memory_order_relaxed);
    drain_target.store(nullptr, std::memory_order_release);
    watcher.join();
  };

  const auto dump_stats = [&cli](const serve::Server& server) {
    if (!cli.stats_dump) return;
    const std::string text = serve::format_stats_text(server.stats_snapshot());
    std::fwrite(text.data(), 1, text.size(), stderr);
    std::fflush(stderr);
  };

  if (cli.listen_port >= 0) {
    serve::Server server(options);
    drain_target.store(&server, std::memory_order_release);
    serve::ListenOptions listen;
    listen.port = static_cast<std::uint16_t>(cli.listen_port);
    listen.metrics_port = cli.metrics_port;
    const int rc = serve::listen_and_serve(listen, server);
    stop_watcher();
    dump_stats(server);
    // A completed drain is a clean exit (0); only a hard stop maps to 130.
    return g_stop.stop_requested() ? 130 : rc;
  }

  serve::Server server(options, [](const std::string& line) {
    std::fwrite(line.data(), 1, line.size(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  });
  drain_target.store(&server, std::memory_order_release);
  serve::serve_stdin(server, options.stop);
  stop_watcher();
  const serve::Server::Stats stats = server.stats();
  std::fprintf(stderr,
               "lrsizer serve: %zu accepted, %zu completed (%zu from cache), "
               "%zu cancelled, %zu errors\n",
               stats.accepted, stats.completed, stats.cache_hits,
               stats.cancelled, stats.errors);
  dump_stats(server);
  return g_stop.stop_requested() ? 130 : 0;
}

int cmd_merge(const CliOptions& cli) {
  if (cli.inputs.empty()) fail("merge needs shard report files");
  std::vector<runtime::Json> shards;
  for (const auto& path : cli.inputs) {
    std::ifstream in(path);
    if (!in) fail("cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
      shards.push_back(runtime::Json::parse(buffer.str()));
    } catch (const runtime::JsonParseError& e) {
      std::cerr << "lrsizer: " << path << ": " << e.what() << "\n";
      return 2;
    }
  }
  runtime::Json merged;
  try {
    merged = runtime::merge_batch_reports(shards);
  } catch (const std::exception& e) {
    // invalid_argument from merge's own validation, or out_of_range /
    // bad_variant_access from structurally malformed report JSON — either
    // way a readable rejection, not an abort.
    std::cerr << "lrsizer: " << e.what() << "\n";
    return 2;
  }
  write_file(cli.json_path.empty() ? "-" : cli.json_path, merged.dump(2) + "\n");
  return 0;
}

int cmd_profiles() {
  util::TextTable table({"name", "#G", "#W", "PI", "PO", "depth"});
  for (const auto& profile : netlist::iscas85_profiles()) {
    table.add_row({profile.name, util::TextTable::integer(profile.num_gates),
                   util::TextTable::integer(profile.num_wires),
                   util::TextTable::integer(profile.num_inputs),
                   util::TextTable::integer(profile.num_outputs),
                   util::TextTable::integer(profile.depth)});
  }
  table.print(std::cout);
  std::printf("(plus \"c17\": the real ISCAS85 c17 netlist, parsed not generated)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::set_log_level(util::LogLevel::kWarn);
  const CliOptions cli = parse_args(argc, argv);
  if (cli.command == "version") {
    std::cout << kVersion << "\n";
    return 0;
  }
  // Arm fault injection before any command builds a Server, so the
  // per-point lrsizer_fault_injected_total metrics cover every armed
  // point. Disarmed (the default), every fault point is one relaxed
  // atomic load.
  {
    std::string error;
    for (const std::string& spec : cli.fault_specs) {
      if (!fault::arm(spec, &error)) fail("--fault-inject: " + error);
    }
    if (fault::arm_from_env(&error) < 0) fail("$LRSIZER_FAULT: " + error);
  }
  std::signal(SIGINT, handle_interrupt);
  std::signal(SIGTERM, handle_interrupt);
  if (cli.command == "run") return cmd_run(cli);
  if (cli.command == "batch") return cmd_batch(cli);
  if (cli.command == "sweep") return cmd_sweep(cli);
  if (cli.command == "serve") return cmd_serve(cli);
  if (cli.command == "merge") return cmd_merge(cli);
  if (cli.command == "profiles") return cmd_profiles();
  fail("unknown command '" + cli.command + "'");
}
